//! The environment machine: closure-based evaluation of compiled λC.
//!
//! Where [`crate::smallstep`] re-traverses and re-substitutes the whole
//! term on every step, this machine evaluates [`crate::compile::Code`]
//! with **persistent environments** (a β-step is one cons onto an
//! environment list) and **reified continuations** (`Rc` closures, so the
//! multi-shot delimited and choice continuations of rule (R5) come from
//! cloning a pointer instead of replugging a syntactic context).
//!
//! The machine mirrors the Fig-6 loss-continuation semantics exactly:
//!
//! * **Eager loss emission** — `loss(v)` emits into the innermost loss
//!   sink the moment it reduces, like the transition labels of Fig 6;
//!   the ambient sink accumulates in emission order, so totals are
//!   bit-identical to [`crate::bigstep::eval`]'s running sum.
//! * **Capture scopes** — a `◮` left-hand side (rule S2) and a choice
//!   probe collect their emissions into a local buffer and fold them
//!   right-associatively around the loss continuation's verdict,
//!   reproducing smallstep's `r1 + (r2 + (… + g(v)))` nesting including
//!   the elision of zero losses; `reset` (S4) discards.
//! * **Loss continuations as values** — the internal `GVal` chains
//!   mirror the (F)/(S1)–(S4) transitions: every evaluation position
//!   extends the chain with a frame (`λx. F[x] ◮ g`), handler bodies
//!   get the return-clause extension with the *live* parameter (the
//!   activation's parameter stack plays the role of smallstep's
//!   rebuilt-from-the-term `from` value), and `then`/`local` replace it.
//! * **Handlers** — rule (R5) builds the probe (`l`) and resume (`k`)
//!   continuations as machine values closing over the captured
//!   continuation; both re-run it under a fresh parameter push, so
//!   parameterized handlers thread state exactly as the rebuilt terms
//!   of the substitution semantics do.
//!
//! Two extra run modes serve the engine bridge (`lambda-rt`): **forced
//! choices** replace the clause of selected boolean operations by a
//! scripted decision (turning one run into one search candidate), and a
//! **prune hook** aborts a run whose ambient partial loss is already
//! strictly worse than a shared bound (sound for non-negative losses).

use crate::compile::{Code, CodeHandler, CompiledProgram};
use crate::loss::LossVal;
use crate::prim::{prim_lookup, Ground};
use crate::syntax::Const;
use crate::types::Type;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Values and environments
// ---------------------------------------------------------------------------

/// A persistent environment: de Bruijn index 0 is the most recent push.
#[derive(Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

struct EnvNode {
    val: MVal,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extends with one value (O(1), shares the tail).
    pub fn push(&self, val: MVal) -> Env {
        Env(Some(Rc::new(EnvNode { val, next: self.clone() })))
    }

    /// Looks up de Bruijn index `i`.
    pub fn get(&self, i: usize) -> Option<&MVal> {
        let mut cur = self;
        for _ in 0..i {
            cur = &cur.0.as_ref()?.next;
        }
        cur.0.as_ref().map(|n| &n.val)
    }
}

/// One-line opaque Debug impls for closure-bearing types.
macro_rules! fmt_summary {
    ($name:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str($name)
        }
    };
}

impl fmt::Debug for Env {
    fmt_summary!("Env");
}

/// A machine value. Ground shapes carry the type annotations needed to
/// reconstruct the same [`Ground`] values the reference interpreter
/// produces; functional values are closures or the machine-built handler
/// continuations of rule (R5).
#[derive(Clone)]
pub enum MVal {
    /// A loss constant.
    Loss(LossVal),
    /// A character.
    Char(char),
    /// A string.
    Str(String),
    /// A natural number.
    Nat(u64),
    /// A tuple.
    Tuple(Vec<MVal>),
    /// An injection into a sum.
    Sum {
        /// Right injection?
        right: bool,
        /// Left summand type.
        lty: Type,
        /// Right summand type.
        rty: Type,
        /// Payload.
        val: Box<MVal>,
    },
    /// A list value.
    List {
        /// Element type.
        elem: Type,
        /// Elements, head first.
        items: Vec<MVal>,
    },
    /// A closure (a `λ` value).
    Clos(Clos),
    /// The choice continuation `l` of rule (R5): applied to `(p, y)`,
    /// yields the loss the rest of the program would incur.
    Probe(HandlerCtl),
    /// The delimited continuation `k` of rule (R5): applied to `(p, y)`,
    /// resumes the handled computation.
    Resume(HandlerCtl),
}

impl MVal {
    /// The unit value.
    pub fn unit() -> MVal {
        MVal::Tuple(Vec::new())
    }

    /// The boolean encoding (`inl () = true`), matching [`crate::syntax::Expr::bool`].
    pub fn bool(b: bool) -> MVal {
        MVal::Sum { right: !b, lty: Type::unit(), rty: Type::unit(), val: Box::new(MVal::unit()) }
    }

    /// Converts a first-order value to [`Ground`]; `None` for closures and
    /// handler continuations.
    pub fn to_ground(&self) -> Option<Ground> {
        match self {
            MVal::Loss(l) => Some(Ground::Loss(l.clone())),
            MVal::Char(c) => Some(Ground::Char(*c)),
            MVal::Str(s) => Some(Ground::Str(s.clone())),
            MVal::Nat(n) => Some(Ground::Nat(*n)),
            MVal::Tuple(vs) => {
                Some(Ground::Tuple(vs.iter().map(MVal::to_ground).collect::<Option<Vec<_>>>()?))
            }
            MVal::Sum { right, val, .. } => Some(Ground::Sum(*right, Box::new(val.to_ground()?))),
            MVal::List { items, .. } => {
                Some(Ground::List(items.iter().map(MVal::to_ground).collect::<Option<Vec<_>>>()?))
            }
            MVal::Clos(_) | MVal::Probe(_) | MVal::Resume(_) => None,
        }
    }
}

impl fmt::Debug for MVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_ground() {
            Some(g) => write!(f, "{g}"),
            None => f.write_str("<fun>"),
        }
    }
}

/// A closure: compiled body plus captured environment.
#[derive(Clone)]
pub struct Clos {
    body: Arc<Code>,
    env: Env,
}

impl fmt::Debug for Clos {
    fmt_summary!("Clos");
}

/// One handler activation: the handler, its closure environment, and the
/// live-parameter stack consulted by the return-clause loss continuation
/// (smallstep reads the current `from` value off the rebuilt term; the
/// machine reads the top of this stack, pushed once per continuation run).
struct Activation {
    h: Arc<CodeHandler>,
    env: Env,
    params: RefCell<Vec<MVal>>,
}

/// What the machine-built `l`/`k` values of rule (R5) close over: the
/// activation, the captured continuation `K`, and the loss continuation
/// current at the handler (both `f_l = λz. (with h handle K[z.1]) ◮ g` and
/// `f_k = λz. ⟨with h handle K[z.1]⟩_g` mention the same `g`).
#[derive(Clone)]
pub struct HandlerCtl {
    act: Rc<Activation>,
    kont: KCont,
    g: GVal,
}

impl fmt::Debug for HandlerCtl {
    fmt_summary!("HandlerCtl");
}

// ---------------------------------------------------------------------------
// Loss continuations as values
// ---------------------------------------------------------------------------

/// A reified loss continuation — the `g` threaded through Fig 6, as a
/// chain of the transitions that built it.
#[derive(Clone)]
enum GVal {
    /// The zero continuation `0` (how execution starts, §3.3).
    Zero,
    /// An ordinary lambda installed by `◮` (S2) or `⟨·⟩_g` (S3).
    Fun(Clos),
    /// The (F) extension `λx. F[x] ◮ outer`: `rest` finishes the current
    /// node's evaluation given the hole's value.
    Frame { rest: KCont, outer: Rc<GVal> },
    /// The (S1) extension `λx. ret(p_now, x) ◮ outer` with the live
    /// parameter of `act`.
    Ret { act: Rc<Activation>, outer: Rc<GVal> },
}

// ---------------------------------------------------------------------------
// Outcomes, errors, configuration
// ---------------------------------------------------------------------------

/// A machine run's result, mirroring [`crate::bigstep::EvalOutcome`].
#[derive(Clone, Debug)]
pub struct MachineOutcome {
    /// Total ambient loss, accumulated in emission order.
    pub loss: LossVal,
    /// The terminal value (`None` when stuck).
    pub value: Option<MVal>,
    /// `Some(op)` iff evaluation stuck on an unhandled operation.
    pub stuck_on: Option<String>,
    /// Machine steps (β-reductions and continuation runs) taken.
    pub steps: u64,
    /// Forced decisions consumed (0 outside forced mode).
    pub decisions_used: u32,
}

impl MachineOutcome {
    /// The terminal as a [`Ground`] value, when it is first-order.
    pub fn ground_value(&self) -> Option<Ground> {
        self.value.as_ref().and_then(MVal::to_ground)
    }
}

/// A runtime error. On well-typed input only [`MachError::OutOfFuel`],
/// [`MachError::Pruned`] and [`MachError::DecisionsExhausted`] can occur,
/// mirroring the progress guarantee of the reference semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachError {
    /// Ill-formed (ill-typed) expression reached evaluation.
    Malformed(String),
    /// A primitive failed.
    Prim(String),
    /// Fuel exhausted.
    OutOfFuel {
        /// Steps taken before giving up.
        steps: u64,
    },
    /// The prune hook reported the partial loss strictly dominated.
    Pruned,
    /// Forced mode ran out of scripted decisions.
    DecisionsExhausted,
}

impl fmt::Display for MachError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachError::Malformed(m) => write!(f, "malformed expression: {m}"),
            MachError::Prim(m) => write!(f, "primitive failed: {m}"),
            MachError::OutOfFuel { steps } => write!(f, "out of fuel after {steps} steps"),
            MachError::Pruned => f.write_str("run abandoned: partial loss dominated"),
            MachError::DecisionsExhausted => f.write_str("forced run exhausted its decisions"),
        }
    }
}

impl std::error::Error for MachError {}

/// Scripted decisions for a forced run: operations in `ops` (which must
/// return `bool` and be handled by an argmin-style chooser for the search
/// bridge's equivalence to hold — see `lambda-rt`) are answered from the
/// bits of `bits` instead of their handler clause.
///
/// Decision `j` (0-based, in dynamic order) is `true` iff bit
/// `max_decisions - 1 - j` of `bits` is **0**, so candidate indices
/// enumerate decision vectors lexicographically with `true` first —
/// matching the `leq` tie-breaking of the paper's argmin handlers.
#[derive(Clone, Debug)]
pub struct ForcedChoices {
    /// Operations to force.
    pub ops: BTreeSet<String>,
    /// The decision word (one candidate index).
    pub bits: u64,
    /// How many decisions the word encodes (the search depth).
    pub max_decisions: u32,
}

/// Mid-run pruning: abort when the encoded ambient partial loss is
/// strictly above `threshold` (a shared mirror of the engine's best
/// achieved loss, in the same monotone `prune_bits` encoding). Sound only
/// when later emissions cannot decrease the total (non-negative losses).
#[derive(Clone)]
pub struct MachinePrune {
    /// Best achieved loss so far, encoded; `u64::MAX` means none yet.
    pub threshold: Arc<AtomicU64>,
    /// The monotone order embedding (e.g. `OrdLossVal::prune_bits`).
    pub encode: fn(&LossVal) -> u64,
}

impl fmt::Debug for MachinePrune {
    fmt_summary!("MachinePrune");
}

/// Run configuration.
#[derive(Clone, Debug, Default)]
pub struct RunConfig {
    /// Step budget; 0 means [`DEFAULT_MACHINE_FUEL`].
    pub fuel: u64,
    /// Forced decisions (engine-search candidates).
    pub forced: Option<ForcedChoices>,
    /// Mid-run pruning hook.
    pub prune: Option<MachinePrune>,
}

/// Default step budget: ample for every paper program and test corpus.
pub const DEFAULT_MACHINE_FUEL: u64 = 2_000_000;

// ---------------------------------------------------------------------------
// The machine
// ---------------------------------------------------------------------------

type LossBuf = Vec<LossVal>;
type EvalR = Result<MRes, MachError>;
/// A resumable continuation: feed an operation result, keep evaluating.
type KCont = Rc<dyn Fn(&mut Machine, MVal, &mut LossBuf) -> EvalR>;
/// A deferred continuation run (a handler segment's body).
type Seg = Rc<dyn Fn(&mut Machine, &mut LossBuf) -> EvalR>;

/// Either a value or a stuck operation with its resumption.
enum MRes {
    Done(MVal),
    Stuck(StuckM),
}

struct StuckM {
    op: String,
    arg: MVal,
    cont: KCont,
    /// `true` for a *choice yield* (tree mode): the operation was already
    /// claimed by its innermost handler and `cont` expects the decision
    /// (`MVal::bool`), so every enclosing frame — handlers included —
    /// must forward it untouched to the top of the run.
    choice: bool,
}

#[derive(Clone)]
struct ForcedState {
    ops: BTreeSet<String>,
    bits: u64,
    /// Decisions `0..scripted` are answered from `bits`; decisions
    /// `scripted..max` yield [`ChoicePoint`]s (tree mode). Plain forced
    /// runs script everything (`scripted == max`).
    scripted: u32,
    max: u32,
    used: u32,
}

/// What a forced operation should do next.
enum Decision {
    /// Answer from the scripted bits.
    Scripted(bool),
    /// Suspend: surface a [`ChoicePoint`] to the caller.
    Yield,
}

impl ForcedState {
    fn next(&mut self) -> Result<Decision, MachError> {
        if self.used >= self.max {
            return Err(MachError::DecisionsExhausted);
        }
        if self.used < self.scripted {
            let shift = self.scripted - 1 - self.used;
            self.used += 1;
            return Ok(Decision::Scripted((self.bits >> shift) & 1 == 0));
        }
        self.used += 1;
        Ok(Decision::Yield)
    }
}

/// The mutable run state threaded through evaluation. `Clone` is the
/// snapshot operation of tree mode: a [`ChoicePoint`] captures the state
/// at a suspension and every resume works on its own copy.
#[derive(Clone)]
struct Machine {
    fuel_left: u64,
    steps: u64,
    /// Depth of enclosing capture/discard loss scopes (0 = ambient).
    capture_depth: u32,
    forced: Option<ForcedState>,
    prune: Option<MachinePrune>,
    prune_partial: LossVal,
}

impl Machine {
    fn tick(&mut self) -> Result<(), MachError> {
        self.steps += 1;
        if self.fuel_left == 0 {
            return Err(MachError::OutOfFuel { steps: self.steps });
        }
        self.fuel_left -= 1;
        Ok(())
    }

    /// Emits a loss into `buf`, mirroring smallstep exactly: ambient
    /// emissions keep every loss (the bigstep total adds them all, in
    /// order), capture scopes elide zeros (S2 skips the `add` wrapper for
    /// `r = 0`).
    fn emit(&mut self, buf: &mut LossBuf, l: LossVal) -> Result<(), MachError> {
        if self.capture_depth == 0 {
            if let Some(p) = &self.prune {
                self.prune_partial = self.prune_partial.add(&l);
                // ordering: Relaxed — the threshold mirrors the shared
                // bound's monotone hint: a stale (larger) value only
                // under-prunes, it can never wrongly abort a run.
                if (p.encode)(&self.prune_partial) > p.threshold.load(Ordering::Relaxed) {
                    return Err(MachError::Pruned);
                }
            }
            buf.push(l);
        } else if !l.is_zero() {
            buf.push(l);
        }
        Ok(())
    }
}

/// Runs a compiled program under the zero loss continuation with default
/// fuel — the machine counterpart of [`crate::bigstep::eval_closed`].
///
/// # Errors
///
/// See [`MachError`]; on well-typed, fully handled input only fuel
/// exhaustion is possible.
pub fn run(p: &CompiledProgram) -> Result<MachineOutcome, MachError> {
    run_with(p, RunConfig::default())
}

/// Runs a compiled program with explicit configuration.
///
/// # Errors
///
/// See [`MachError`].
pub fn run_with(p: &CompiledProgram, cfg: RunConfig) -> Result<MachineOutcome, MachError> {
    let fuel = if cfg.fuel == 0 { DEFAULT_MACHINE_FUEL } else { cfg.fuel };
    let mut m = Machine {
        fuel_left: fuel,
        steps: 0,
        capture_depth: 0,
        forced: cfg.forced.map(|f| ForcedState {
            ops: f.ops,
            bits: f.bits,
            scripted: f.max_decisions,
            max: f.max_decisions,
            used: 0,
        }),
        prune: cfg.prune,
        prune_partial: LossVal::zero(),
    };
    let mut ambient: LossBuf = Vec::new();
    let r = eval(&mut m, &p.code, &Env::empty(), &GVal::Zero, &mut ambient)?;
    // Scripted forced runs never yield (`scripted == max`), so `r` is a
    // plain value or genuinely-stuck operation here.
    Ok(outcome_of(&m, r, &ambient))
}

/// Folds a finished run (value or stuck, never a choice yield) into a
/// [`MachineOutcome`].
fn outcome_of(m: &Machine, r: MRes, ambient: &LossBuf) -> MachineOutcome {
    let mut loss = LossVal::zero();
    for l in ambient {
        loss = loss.add(l);
    }
    let decisions_used = m.forced.as_ref().map_or(0, |f| f.used);
    match r {
        MRes::Done(v) => {
            MachineOutcome { loss, value: Some(v), stuck_on: None, steps: m.steps, decisions_used }
        }
        MRes::Stuck(s) => {
            debug_assert!(!s.choice, "choice yield outside tree mode");
            MachineOutcome {
                loss,
                value: None,
                stuck_on: Some(s.op),
                steps: m.steps,
                decisions_used,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tree mode: snapshot/resume at forced choice points
// ---------------------------------------------------------------------------

/// Tree-mode decisions: the first `prefix_len` decisions of operations in
/// `ops` are scripted from `prefix_bits` (decision `j` is `true` iff bit
/// `prefix_len - 1 - j` is **0**, the [`ForcedChoices`] encoding); every
/// further decision up to `max_decisions` suspends the run as a
/// [`ChoicePoint`] instead, so a search can explore both branches from
/// the shared prefix without replaying it.
#[derive(Clone, Debug)]
pub struct TreeChoices {
    /// Operations to force (must return `bool`, see [`ForcedChoices`]).
    pub ops: BTreeSet<String>,
    /// The scripted prefix word.
    pub prefix_bits: u64,
    /// How many decisions the prefix scripts.
    pub prefix_len: u32,
    /// Total decision budget (the search depth).
    pub max_decisions: u32,
}

/// Tree-mode run configuration.
#[derive(Clone, Debug)]
pub struct TreeRunConfig {
    /// Step budget; 0 means [`DEFAULT_MACHINE_FUEL`]. Each root-to-leaf
    /// path consumes at most this much, exactly like one forced run.
    pub fuel: u64,
    /// Which operations are forced, and how.
    pub choices: TreeChoices,
    /// Mid-run pruning hook (see [`MachinePrune`]); the accumulated
    /// partial loss snapshots with the machine, so each branch prunes
    /// against its own path total.
    pub prune: Option<MachinePrune>,
}

/// Where a tree-mode run stopped: a finished outcome, or a suspension at
/// a forced choice point.
#[derive(Debug)]
pub enum Explored {
    /// The run finished (terminal value or genuinely-stuck operation).
    Done(MachineOutcome),
    /// The run reached a forced decision; resume with either branch.
    Choice(ChoicePoint),
}

/// A run suspended at a forced choice point. The captured continuation is
/// **multi-shot** — the machine's environments are persistent, handler
/// parameter stacks are balanced at a suspension, and every mutable
/// scrap of run state (fuel, loss scopes, the pruning partial) lives in a
/// snapshot cloned per [`ChoicePoint::resume`] — so both decisions can be
/// explored from one shared prefix evaluation. Not `Send`: points stay on
/// the worker that created them; parallel searches ship decision
/// *prefixes* and rebuild points locally.
pub struct ChoicePoint {
    cont: KCont,
    state: Machine,
    ambient: LossBuf,
    partial: LossVal,
}

impl fmt::Debug for ChoicePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChoicePoint(depth = {}, partial = {:?})", self.depth(), self.partial)
    }
}

impl ChoicePoint {
    /// Decisions completed before this choice — the node's depth in the
    /// decision tree (path bits have this many digits).
    pub fn depth(&self) -> u32 {
        let f = self.state.forced.as_ref().expect("a choice point implies forced mode");
        f.used - 1
    }

    /// The ambient loss emitted so far along this path — a lower bound on
    /// every completion's total when emissions are non-negative, and a
    /// cheap best-first ordering estimate regardless.
    pub fn partial_loss(&self) -> &LossVal {
        &self.partial
    }

    /// Resumes the run with `decision`, on a fresh copy of the suspended
    /// state (call as many times as you like, in any order).
    ///
    /// # Errors
    ///
    /// See [`MachError`]; [`MachError::Pruned`] when the hook abandons
    /// the branch.
    pub fn resume(&self, decision: bool) -> Result<Explored, MachError> {
        let mut m = self.state.clone();
        let mut ambient = self.ambient.clone();
        let r = (self.cont)(&mut m, MVal::bool(decision), &mut ambient)?;
        Ok(finish_explored(m, r, ambient))
    }
}

fn finish_explored(m: Machine, r: MRes, ambient: LossBuf) -> Explored {
    match r {
        MRes::Stuck(s) if s.choice => {
            let mut partial = LossVal::zero();
            for l in &ambient {
                partial = partial.add(l);
            }
            Explored::Choice(ChoicePoint { cont: s.cont, state: m, ambient, partial })
        }
        r => Explored::Done(outcome_of(&m, r, &ambient)),
    }
}

/// Starts a tree-mode run: evaluates under the scripted prefix to the
/// first unscripted forced decision (or straight to an outcome, when the
/// path terminates inside the prefix). The tree search built on this does
/// O(tree nodes) machine work for a depth-`d` space instead of the
/// O(2^d · d) of replaying every forced path from the root.
///
/// # Errors
///
/// See [`MachError`].
pub fn explore(p: &CompiledProgram, cfg: TreeRunConfig) -> Result<Explored, MachError> {
    let fuel = if cfg.fuel == 0 { DEFAULT_MACHINE_FUEL } else { cfg.fuel };
    let mut m = Machine {
        fuel_left: fuel,
        steps: 0,
        capture_depth: 0,
        forced: Some(ForcedState {
            ops: cfg.choices.ops,
            bits: cfg.choices.prefix_bits,
            scripted: cfg.choices.prefix_len,
            max: cfg.choices.max_decisions,
            used: 0,
        }),
        prune: cfg.prune,
        prune_partial: LossVal::zero(),
    };
    let mut ambient: LossBuf = Vec::new();
    let r = eval(&mut m, &p.code, &Env::empty(), &GVal::Zero, &mut ambient)?;
    Ok(finish_explored(m, r, ambient))
}

// ---------------------------------------------------------------------------
// Core evaluation
// ---------------------------------------------------------------------------

/// Sequences `rest` after a possibly-stuck result, re-wrapping the
/// resumption so later sticks keep composing (the CPS analogue of
/// plugging frames back around `K[y]`).
fn bind(m: &mut Machine, r: MRes, buf: &mut LossBuf, rest: KCont) -> EvalR {
    match r {
        MRes::Done(v) => rest(m, v, buf),
        MRes::Stuck(s) => {
            let inner = s.cont;
            let cont: KCont = Rc::new(move |m, y, buf| {
                let r = inner(m, y, buf)?;
                bind(m, r, buf, rest.clone())
            });
            Ok(MRes::Stuck(StuckM { op: s.op, arg: s.arg, cont, choice: s.choice }))
        }
    }
}

/// State for evaluating a node's children left to right; `finish`
/// completes the node once all children are values.
struct SeqState {
    children: Rc<Vec<Arc<Code>>>,
    idx: usize,
    done: Vec<MVal>,
    env: Env,
    g: GVal,
    finish: Finish,
}

type Finish = Rc<dyn Fn(&mut Machine, Vec<MVal>, &mut LossBuf) -> EvalR>;

fn eval_seq(m: &mut Machine, st: SeqState, buf: &mut LossBuf) -> EvalR {
    if st.idx == st.children.len() {
        return (st.finish)(m, st.done, buf);
    }
    let child = Arc::clone(&st.children[st.idx]);
    let env = st.env.clone();
    let g_node = st.g.clone();
    // The continuation after this child: it both resumes evaluation on
    // `bind` and *is* the `F[x]` of the loss-continuation extension
    // `λx. F[x] ◮ g` (rule F) — one coarse frame per remaining node,
    // which folds identically to smallstep's one frame per constructor.
    let rest: KCont = Rc::new(move |m, v, buf| {
        let mut done = st.done.clone();
        done.push(v);
        eval_seq(
            m,
            SeqState {
                children: Rc::clone(&st.children),
                idx: st.idx + 1,
                done,
                env: st.env.clone(),
                g: st.g.clone(),
                finish: Rc::clone(&st.finish),
            },
            buf,
        )
    });
    let g_child = GVal::Frame { rest: Rc::clone(&rest), outer: Rc::new(g_node) };
    let r = eval(m, &child, &env, &g_child, buf)?;
    bind(m, r, buf, rest)
}

/// Convenience: evaluates `children` in `env`, then `finish`.
fn seq(
    m: &mut Machine,
    children: Vec<Arc<Code>>,
    env: &Env,
    g: &GVal,
    buf: &mut LossBuf,
    finish: Finish,
) -> EvalR {
    eval_seq(
        m,
        SeqState {
            children: Rc::new(children),
            idx: 0,
            done: Vec::new(),
            env: env.clone(),
            g: g.clone(),
            finish,
        },
        buf,
    )
}

/// Evaluates `code` in `env` under loss continuation `g`, emitting into
/// `buf` — the machine's analogue of the judgment `g ⊢ε e →* w`.
fn eval(m: &mut Machine, code: &Arc<Code>, env: &Env, g: &GVal, buf: &mut LossBuf) -> EvalR {
    match code.as_ref() {
        Code::Const(c) => Ok(MRes::Done(const_val(c))),
        Code::Var(i) => match env.get(*i) {
            Some(v) => Ok(MRes::Done(v.clone())),
            None => Err(MachError::Malformed(format!("unbound de Bruijn index {i}"))),
        },
        Code::Lam(body) => {
            Ok(MRes::Done(MVal::Clos(Clos { body: Arc::clone(body), env: env.clone() })))
        }
        Code::Zero => Ok(MRes::Done(MVal::Nat(0))),
        Code::Nil(t) => Ok(MRes::Done(MVal::List { elem: t.clone(), items: Vec::new() })),
        Code::Prim(name, a) => {
            let name = name.clone();
            seq(
                m,
                vec![Arc::clone(a)],
                env,
                g,
                buf,
                Rc::new(move |_m, done, _buf| prim_apply(&name, &done[0])),
            )
        }
        Code::Tuple(es) => seq(
            m,
            es.clone(),
            env,
            g,
            buf,
            Rc::new(|_m, done, _buf| Ok(MRes::Done(MVal::Tuple(done)))),
        ),
        Code::Proj(a, i) => {
            let i = *i;
            seq(
                m,
                vec![Arc::clone(a)],
                env,
                g,
                buf,
                Rc::new(move |_m, done, _buf| match &done[0] {
                    MVal::Tuple(vs) => vs.get(i).cloned().map(MRes::Done).ok_or_else(|| {
                        MachError::Malformed(format!("projection .{} out of range", i + 1))
                    }),
                    other => {
                        Err(MachError::Malformed(format!("projection from non-tuple {other:?}")))
                    }
                }),
            )
        }
        Code::Inl { lty, rty, e } => inj(m, (false, lty, rty, e), env, g, buf),
        Code::Inr { lty, rty, e } => inj(m, (true, lty, rty, e), env, g, buf),
        Code::Succ(a) => seq(
            m,
            vec![Arc::clone(a)],
            env,
            g,
            buf,
            Rc::new(|_m, done, _buf| match &done[0] {
                MVal::Nat(n) => Ok(MRes::Done(MVal::Nat(n + 1))),
                other => Err(MachError::Malformed(format!("succ of non-nat {other:?}"))),
            }),
        ),
        Code::Cons(a, b) => seq(
            m,
            vec![Arc::clone(a), Arc::clone(b)],
            env,
            g,
            buf,
            Rc::new(|_m, mut done, _buf| {
                let tail = done.pop().expect("two children");
                let head = done.pop().expect("two children");
                match tail {
                    MVal::List { elem, mut items } => {
                        items.insert(0, head);
                        Ok(MRes::Done(MVal::List { elem, items }))
                    }
                    other => Err(MachError::Malformed(format!("cons onto non-list {other:?}"))),
                }
            }),
        ),
        Code::Cases { scrut, lbody, rbody } => {
            let (lbody, rbody) = (Arc::clone(lbody), Arc::clone(rbody));
            let (env2, g2) = (env.clone(), g.clone());
            seq(
                m,
                vec![Arc::clone(scrut)],
                env,
                g,
                buf,
                Rc::new(move |m, mut done, buf| match done.pop().expect("one child") {
                    // The chosen branch replaces the node: same g.
                    MVal::Sum { right, val, .. } => {
                        let body = if right { &rbody } else { &lbody };
                        eval(m, body, &env2.push(*val), &g2, buf)
                    }
                    other => Err(MachError::Malformed(format!("cases on non-sum {other:?}"))),
                }),
            )
        }
        Code::App(f, a) => {
            let g2 = g.clone();
            seq(
                m,
                vec![Arc::clone(f), Arc::clone(a)],
                env,
                g,
                buf,
                Rc::new(move |m, mut done, buf| {
                    let a = done.pop().expect("two children");
                    let f = done.pop().expect("two children");
                    apply(m, f, a, &g2, buf)
                }),
            )
        }
        Code::Iter(a, b, c) => {
            let g2 = g.clone();
            seq(
                m,
                vec![Arc::clone(a), Arc::clone(b), Arc::clone(c)],
                env,
                g,
                buf,
                Rc::new(move |m, mut done, buf| {
                    let cv = done.pop().expect("three children");
                    let bv = done.pop().expect("three children");
                    match done.pop().expect("three children") {
                        MVal::Nat(n) => iter_apply(m, n, bv, &cv, &g2, buf, |_d, v| v),
                        other => Err(MachError::Malformed(format!("iter on non-nat {other:?}"))),
                    }
                }),
            )
        }
        Code::Fold(a, b, c) => {
            let g2 = g.clone();
            seq(
                m,
                vec![Arc::clone(a), Arc::clone(b), Arc::clone(c)],
                env,
                g,
                buf,
                Rc::new(move |m, mut done, buf| {
                    let cv = done.pop().expect("three children");
                    let bv = done.pop().expect("three children");
                    match done.pop().expect("three children") {
                        MVal::List { items, .. } => {
                            let len = items.len() as u64;
                            let items = Rc::new(items);
                            let pick =
                                move |d: usize, v: MVal| MVal::Tuple(vec![items[d].clone(), v]);
                            iter_apply(m, len, bv, &cv, &g2, buf, pick)
                        }
                        other => Err(MachError::Malformed(format!("fold on non-list {other:?}"))),
                    }
                }),
            )
        }
        Code::OpCall { op, arg } => {
            let op = op.clone();
            seq(
                m,
                vec![Arc::clone(arg)],
                env,
                g,
                buf,
                Rc::new(move |_m, mut done, _buf| {
                    Ok(MRes::Stuck(StuckM {
                        op: op.clone(),
                        arg: done.pop().expect("one child"),
                        cont: Rc::new(|_m, y, _buf| Ok(MRes::Done(y))),
                        choice: false,
                    }))
                }),
            )
        }
        Code::Loss(a) => seq(
            m,
            vec![Arc::clone(a)],
            env,
            g,
            buf,
            Rc::new(|m, mut done, buf| match done.pop().expect("one child") {
                MVal::Loss(l) => {
                    m.emit(buf, l)?;
                    Ok(MRes::Done(MVal::unit()))
                }
                other => Err(MachError::Malformed(format!("loss of non-loss {other:?}"))),
            }),
        ),
        Code::Handle { handler, from, body } => {
            let act_proto = (Arc::clone(handler), env.clone());
            let body = Arc::clone(body);
            let g2 = g.clone();
            seq(
                m,
                vec![Arc::clone(from)],
                env,
                g,
                buf,
                Rc::new(move |m, mut done, buf| {
                    let p0 = done.pop().expect("one child");
                    let act = Rc::new(Activation {
                        h: Arc::clone(&act_proto.0),
                        env: act_proto.1.clone(),
                        params: RefCell::new(Vec::new()),
                    });
                    // (S1): the handled body runs under the return-clause
                    // extension with the live parameter.
                    let g1 = GVal::Ret { act: Rc::clone(&act), outer: Rc::new(g2.clone()) };
                    let (body, benv) = (Arc::clone(&body), act_proto.1.clone());
                    let start: Seg = Rc::new(move |m, buf| eval(m, &body, &benv, &g1, buf));
                    run_seg(m, &act, p0, start, &g2, buf)
                }),
            )
        }
        Code::Then { e, lam_body } => {
            // (S2): capture the lhs's losses under g := the lambda.
            let lam = GVal::Fun(Clos { body: Arc::clone(lam_body), env: env.clone() });
            let mut cap = Vec::new();
            m.capture_depth += 1;
            let r = eval(m, e, env, &lam, &mut cap);
            m.capture_depth -= 1;
            then_finish(m, r?, cap, lam, buf)
        }
        Code::Local { g_body, e } => {
            // (S3): evaluate under the localised continuation; losses are
            // exported, stuck resumptions keep the baked-in chain.
            let g1 = GVal::Fun(Clos { body: Arc::clone(g_body), env: env.clone() });
            eval(m, e, env, &g1, buf)
        }
        Code::Reset(e) => {
            m.capture_depth += 1;
            let mut junk = Vec::new();
            let r = eval(m, e, env, g, &mut junk);
            m.capture_depth -= 1;
            reset_finish(m, r?)
        }
    }
}

/// (S4) continued: losses inside `reset` stay suppressed across
/// resumptions, and the value passes through untouched (R9).
fn reset_finish(_m: &mut Machine, r: MRes) -> EvalR {
    match r {
        MRes::Done(v) => Ok(MRes::Done(v)),
        MRes::Stuck(s) => {
            let inner = s.cont;
            let cont: KCont = Rc::new(move |m, y, _buf| {
                m.capture_depth += 1;
                let mut junk = Vec::new();
                let r = inner(m, y, &mut junk);
                m.capture_depth -= 1;
                reset_finish(m, r?)
            });
            Ok(MRes::Stuck(StuckM { op: s.op, arg: s.arg, cont, choice: s.choice }))
        }
    }
}

/// Completes a `◮` (or a choice probe, which is one): the captured losses
/// `cap` fold right-associatively around the continuation's verdict on
/// the value — smallstep's `r1 + (r2 + (… + g(v)))` nesting.
fn then_finish(m: &mut Machine, r: MRes, cap: Vec<LossVal>, lam: GVal, buf: &mut LossBuf) -> EvalR {
    match r {
        MRes::Done(v) => {
            let gr = apply_g(m, &lam, v, buf)?;
            fold_finish(m, gr, cap)
        }
        MRes::Stuck(s) => {
            let inner = s.cont;
            let cont: KCont = Rc::new(move |m, y, buf| {
                let mut cap2 = cap.clone();
                m.capture_depth += 1;
                let r = inner(m, y, &mut cap2);
                m.capture_depth -= 1;
                then_finish(m, r?, cap2, lam.clone(), buf)
            });
            Ok(MRes::Stuck(StuckM { op: s.op, arg: s.arg, cont, choice: s.choice }))
        }
    }
}

/// Folds captured losses around the (possibly still suspended) verdict.
fn fold_finish(_m: &mut Machine, gr: MRes, cap: Vec<LossVal>) -> EvalR {
    match gr {
        MRes::Done(MVal::Loss(mut l)) => {
            for r in cap.iter().rev() {
                l = r.add(&l);
            }
            Ok(MRes::Done(MVal::Loss(l)))
        }
        MRes::Done(other) => {
            Err(MachError::Malformed(format!("loss continuation returned non-loss {other:?}")))
        }
        MRes::Stuck(s) => {
            let inner = s.cont;
            let cont: KCont = Rc::new(move |m, y, buf| {
                let r = inner(m, y, buf)?;
                fold_finish(m, r, cap.clone())
            });
            Ok(MRes::Stuck(StuckM { op: s.op, arg: s.arg, cont, choice: s.choice }))
        }
    }
}

/// Applies a reified loss continuation to a value (always in `◮`
/// position, so rule (R7) applies: lambda bodies run under the zero
/// continuation, their ambient emissions escaping to `buf`).
fn apply_g(m: &mut Machine, g: &GVal, v: MVal, buf: &mut LossBuf) -> EvalR {
    match g {
        GVal::Zero => Ok(MRes::Done(MVal::Loss(LossVal::zero()))),
        GVal::Fun(clos) => {
            m.tick()?;
            eval(m, &clos.body, &clos.env.push(v), &GVal::Zero, buf)
        }
        GVal::Frame { rest, outer } => {
            // λx. F[x] ◮ outer.
            let mut cap = Vec::new();
            m.capture_depth += 1;
            let r = rest(m, v, &mut cap);
            m.capture_depth -= 1;
            then_finish(m, r?, cap, (**outer).clone(), buf)
        }
        GVal::Ret { act, outer } => {
            // (S1): λx. ret(p_now, x) ◮ outer, with the live parameter.
            let p = act.params.borrow().last().cloned().ok_or_else(|| {
                MachError::Malformed(
                    "return-clause loss continuation escaped its handler activation".into(),
                )
            })?;
            let env = act.env.push(p).push(v);
            let ret_body = Arc::clone(&act.h.ret_body);
            let outer_g = (**outer).clone();
            let mut cap = Vec::new();
            m.capture_depth += 1;
            let r = eval(m, &ret_body, &env, &outer_g, &mut cap);
            m.capture_depth -= 1;
            then_finish(m, r?, cap, outer_g, buf)
        }
    }
}

/// Runs one handler segment (the initial body, a resumption, or the
/// resumed part of a probe): pushes the segment's parameter, drives the
/// body to a value (R6), a handled operation (R5), or an unhandled one
/// (forwarding), popping the parameter on the way out.
fn run_seg(
    m: &mut Machine,
    act: &Rc<Activation>,
    p: MVal,
    start: Seg,
    g: &GVal,
    buf: &mut LossBuf,
) -> EvalR {
    m.tick()?;
    act.params.borrow_mut().push(p.clone());
    let r = start(m, buf);
    act.params.borrow_mut().pop();
    match r? {
        MRes::Done(v) => {
            // (R6): the return clause runs in place of the handle node.
            let env = act.env.push(p).push(v);
            let ret_body = Arc::clone(&act.h.ret_body);
            eval(m, &ret_body, &env, g, buf)
        }
        MRes::Stuck(s) => {
            if !s.choice && act.h.clause(&s.op).is_some() {
                // Forced-choice interception: answer scripted decisions
                // directly (`k(p, d)`), skipping the clause body; in tree
                // mode, decisions past the scripted prefix suspend the
                // whole run instead.
                let decision = match &mut m.forced {
                    Some(f) if f.ops.contains(&s.op) => Some(f.next()?),
                    _ => None,
                };
                match decision {
                    Some(Decision::Scripted(d)) => {
                        let inner = s.cont;
                        let y = MVal::bool(d);
                        let start2: Seg = Rc::new(move |m, buf| inner(m, y.clone(), buf));
                        return run_seg(m, act, p, start2, g, buf);
                    }
                    Some(Decision::Yield) => {
                        // Suspend exactly where the scripted path would
                        // resume: the choice continuation re-enters this
                        // segment with the (later-supplied) decision, and
                        // propagates out past every enclosing handler.
                        let (act2, g2, inner) = (Rc::clone(act), g.clone(), s.cont);
                        let cont: KCont = Rc::new(move |m, y, buf| {
                            let inner = Rc::clone(&inner);
                            let start2: Seg = Rc::new(move |m, buf| inner(m, y.clone(), buf));
                            run_seg(m, &act2, p.clone(), start2, &g2, buf)
                        });
                        return Ok(MRes::Stuck(StuckM {
                            op: s.op,
                            arg: s.arg,
                            cont,
                            choice: true,
                        }));
                    }
                    None => {}
                }
                // (R5): bind p, x, l, k and run the clause body in place
                // of the handle node (same g).
                let clause = act.h.clause(&s.op).expect("checked above");
                let ctl =
                    HandlerCtl { act: Rc::clone(act), kont: Rc::clone(&s.cont), g: g.clone() };
                let env = act
                    .env
                    .push(p)
                    .push(s.arg)
                    .push(MVal::Probe(ctl.clone()))
                    .push(MVal::Resume(ctl));
                let body = Arc::clone(&clause.body);
                eval(m, &body, &env, g, buf)
            } else {
                // Not ours (or an already-claimed choice yield): forward,
                // re-entering this segment (with the parameter current at
                // the stick) on resumption.
                let (act2, g2, inner) = (Rc::clone(act), g.clone(), s.cont);
                let cont: KCont = Rc::new(move |m, y, buf| {
                    let inner = Rc::clone(&inner);
                    let y2 = y;
                    let start2: Seg = Rc::new(move |m, buf| inner(m, y2.clone(), buf));
                    run_seg(m, &act2, p.clone(), start2, &g2, buf)
                });
                Ok(MRes::Stuck(StuckM { op: s.op, arg: s.arg, cont, choice: s.choice }))
            }
        }
    }
}

/// Function application — β for closures, rule (R5)'s `k`/`l` for the
/// machine-built handler continuations.
fn apply(m: &mut Machine, f: MVal, a: MVal, g: &GVal, buf: &mut LossBuf) -> EvalR {
    match f {
        MVal::Clos(c) => {
            m.tick()?;
            eval(m, &c.body, &c.env.push(a), g, buf)
        }
        MVal::Resume(ctl) => {
            // f_k(p₂, y) = ⟨with h from p₂ handle K[y]⟩_g.
            let (p2, y) = split_pair(a)?;
            let inner = Rc::clone(&ctl.kont);
            let start: Seg = Rc::new(move |m, buf| inner(m, y.clone(), buf));
            run_seg(m, &ctl.act, p2, start, &ctl.g, buf)
        }
        MVal::Probe(ctl) => {
            // f_l(p₂, y) = (with h from p₂ handle K[y]) ◮ g.
            let (p2, y) = split_pair(a)?;
            let inner = Rc::clone(&ctl.kont);
            let start: Seg = Rc::new(move |m, buf| inner(m, y.clone(), buf));
            let mut cap = Vec::new();
            m.capture_depth += 1;
            let r = run_seg(m, &ctl.act, p2, start, &ctl.g, &mut cap);
            m.capture_depth -= 1;
            then_finish(m, r?, cap, ctl.g.clone(), buf)
        }
        other => Err(MachError::Malformed(format!("application of non-function {other:?}"))),
    }
}

/// The shared engine of `iter`/`fold`: `n` applications of `cv` from the
/// innermost out, with the loss-continuation chain the unfolded
/// `c (c (… b))` spine would build. `pick` shapes level `d`'s argument
/// (`fold` pairs it with the list element).
fn iter_apply(
    m: &mut Machine,
    n: u64,
    bv: MVal,
    cv: &MVal,
    g: &GVal,
    buf: &mut LossBuf,
    pick: impl Fn(usize, MVal) -> MVal + 'static,
) -> EvalR {
    if n > m.fuel_left {
        return Err(MachError::OutOfFuel { steps: m.steps });
    }
    let n = usize::try_from(n).map_err(|_| MachError::OutOfFuel { steps: m.steps })?;
    let pick = Rc::new(pick);
    // gs[d] is the loss continuation at unfolding depth d (0 = outermost).
    let mut gs: Vec<GVal> = Vec::with_capacity(n);
    gs.push(g.clone());
    for d in 1..n {
        let (cv2, gd, pick2) = (cv.clone(), gs[d - 1].clone(), Rc::clone(&pick));
        let rest: KCont =
            Rc::new(move |m, v, buf| apply(m, cv2.clone(), pick2(d - 1, v), &gd, buf));
        gs.push(GVal::Frame { rest, outer: Rc::new(gs[d - 1].clone()) });
    }
    let mut cur = MRes::Done(bv);
    for d in (0..n).rev() {
        let (cv2, gd, pick2) = (cv.clone(), gs[d].clone(), Rc::clone(&pick));
        let rest: KCont = Rc::new(move |m, v, buf| apply(m, cv2.clone(), pick2(d, v), &gd, buf));
        cur = bind(m, cur, buf, rest)?;
    }
    Ok(cur)
}

// ---------------------------------------------------------------------------
// Leaf helpers
// ---------------------------------------------------------------------------

fn const_val(c: &Const) -> MVal {
    match c {
        Const::Loss(l) => MVal::Loss(l.clone()),
        Const::Char(c) => MVal::Char(*c),
        Const::Str(s) => MVal::Str(s.clone()),
    }
}

fn inj(
    m: &mut Machine,
    (right, lty, rty, e): (bool, &Type, &Type, &Arc<Code>),
    env: &Env,
    g: &GVal,
    buf: &mut LossBuf,
) -> EvalR {
    let (lty, rty) = (lty.clone(), rty.clone());
    seq(
        m,
        vec![Arc::clone(e)],
        env,
        g,
        buf,
        Rc::new(move |_m, mut done, _buf| {
            Ok(MRes::Done(MVal::Sum {
                right,
                lty: lty.clone(),
                rty: rty.clone(),
                val: Box::new(done.pop().expect("one child")),
            }))
        }),
    )
}

fn split_pair(v: MVal) -> Result<(MVal, MVal), MachError> {
    match v {
        MVal::Tuple(mut vs) if vs.len() == 2 => {
            let y = vs.pop().expect("two");
            let p = vs.pop().expect("two");
            Ok((p, y))
        }
        other => {
            Err(MachError::Malformed(format!("handler continuation applied to non-pair {other:?}")))
        }
    }
}

/// Applies primitive `name` — the same [`prim_lookup`] table as the
/// reference interpreter, so both agree bit-for-bit by construction.
fn prim_apply(name: &str, arg: &MVal) -> EvalR {
    let def = prim_lookup(name)
        .ok_or_else(|| MachError::Malformed(format!("unknown primitive `{name}`")))?;
    let garg = arg
        .to_ground()
        .ok_or_else(|| MachError::Malformed(format!("non-ground prim argument {arg:?}")))?;
    let out = (def.eval)(&garg).map_err(MachError::Prim)?;
    Ok(MRes::Done(ground_to_mval(&out, &def.ret_ty)))
}

/// Ground → machine value, with the type supplying sum/list annotations
/// (the mirror of [`crate::prim::ground_to_value`], including its inert
/// fallback on shape mismatches).
pub fn ground_to_mval(g: &Ground, ty: &Type) -> MVal {
    match (g, ty) {
        (Ground::Loss(l), _) => MVal::Loss(l.clone()),
        (Ground::Char(c), _) => MVal::Char(*c),
        (Ground::Str(s), _) => MVal::Str(s.clone()),
        (Ground::Nat(n), _) => MVal::Nat(*n),
        (Ground::Tuple(gs), Type::Tuple(ts)) => {
            MVal::Tuple(gs.iter().zip(ts).map(|(g, t)| ground_to_mval(g, t)).collect())
        }
        (Ground::Sum(right, g), Type::Sum(a, b)) => MVal::Sum {
            right: *right,
            lty: (**a).clone(),
            rty: (**b).clone(),
            val: Box::new(ground_to_mval(g, if *right { b } else { a })),
        },
        (Ground::List(gs), Type::List(t)) => MVal::List {
            elem: (**t).clone(),
            items: gs.iter().map(|g| ground_to_mval(g, t)).collect(),
        },
        _ => MVal::unit(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigstep::eval_closed;
    use crate::compile::compile;
    use crate::examples;
    use crate::prim::value_to_ground;
    use crate::syntax::Expr;

    /// Runs one example through both evaluators and demands bit-identical
    /// loss and (ground) terminal.
    fn differential(ex: &examples::ExampleProgram) -> MachineOutcome {
        let reference =
            eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone()).unwrap();
        let compiled = compile(&ex.expr).unwrap();
        let out = run(&compiled).unwrap();
        assert_eq!(out.loss, reference.loss, "losses must be bit-identical");
        assert_eq!(out.stuck_on, reference.stuck_on);
        if reference.stuck_on.is_none() {
            assert_eq!(
                out.ground_value(),
                value_to_ground(&reference.terminal),
                "terminals must agree"
            );
        }
        out
    }

    #[test]
    fn machine_matches_reference_on_decide_all() {
        differential(&examples::decide_all());
    }

    #[test]
    fn machine_matches_reference_on_pgm_argmin() {
        let out = differential(&examples::pgm_with_argmin_handler());
        assert_eq!(out.loss, LossVal::scalar(2.0));
    }

    #[test]
    fn machine_matches_reference_on_counter() {
        differential(&examples::counter());
    }

    #[test]
    fn machine_matches_reference_on_minimax() {
        let out = differential(&examples::minimax());
        assert_eq!(out.loss, LossVal::scalar(3.0));
    }

    #[test]
    fn machine_matches_reference_on_password() {
        let out = differential(&examples::password());
        assert_eq!(out.loss, LossVal::scalar(12.0));
    }

    #[test]
    fn machine_matches_reference_on_tune_lr() {
        let out = differential(&examples::tune_lr(1.0, 0.5));
        assert!(out.loss.is_zero());
    }

    #[test]
    fn moo_exhausts_fuel_like_the_reference() {
        // Divergent handling nests machine frames, so keep the budget
        // small (the reference test uses 200 steps for the same reason).
        let ex = examples::moo_divergent();
        let compiled = compile(&ex.expr).unwrap();
        let r = run_with(&compiled, RunConfig { fuel: 60, ..RunConfig::default() });
        assert!(matches!(r.unwrap_err(), MachError::OutOfFuel { .. }));
    }

    #[test]
    fn unhandled_op_reports_stuck() {
        use crate::build::*;
        let e = op("decide", unit());
        let out = run(&compile(&e).unwrap()).unwrap();
        assert_eq!(out.stuck_on.as_deref(), Some("decide"));
        assert!(out.value.is_none());
    }

    #[test]
    fn then_reset_local_loss_scoping() {
        use crate::build::*;
        use crate::types::Effect;
        let e0 = Effect::empty();
        // (loss(2); 7) ◮ λx. x  ⇒  value 9, ambient 0 (S2/R7).
        let lhs = let_(e0.clone(), "_u", Type::unit(), loss(lc(2.0)), lc(7.0));
        let e = then(lhs, e0.clone(), "x", Type::loss(), v("x"));
        let out = run(&compile(&e).unwrap()).unwrap();
        assert!(out.loss.is_zero());
        assert_eq!(out.ground_value(), Some(Ground::Loss(LossVal::scalar(9.0))));
        // reset suppresses (S4), local exports (S3).
        let out = run(&compile(&reset(loss(lc(5.0)))).unwrap()).unwrap();
        assert!(out.loss.is_zero());
        let out = run(&compile(&local0(e0.clone(), Type::unit(), loss(lc(5.0)))).unwrap()).unwrap();
        assert_eq!(out.loss, LossVal::scalar(5.0));
    }

    #[test]
    fn iter_and_fold_match_reference() {
        use crate::build::*;
        use crate::types::Effect;
        let e0 = Effect::empty();
        // iter(3, 1.0, λx. x + x) = 8
        let dbl = lam(e0.clone(), "x", Type::loss(), add(v("x"), v("x")));
        let e = Expr::Iter(Expr::nat(3).rc(), lc(1.0).rc(), dbl.rc());
        let out = run(&compile(&e).unwrap()).unwrap();
        assert_eq!(out.ground_value(), Some(Ground::Loss(LossVal::scalar(8.0))));
        // fold([1,2,3], 0, λ(h,acc). h + acc) = 6
        let f = lam(
            e0.clone(),
            "z",
            Type::Tuple(vec![Type::loss(), Type::loss()]),
            add(proj(v("z"), 0), proj(v("z"), 1)),
        );
        let list = Expr::list(Type::loss(), vec![lc(1.0), lc(2.0), lc(3.0)]);
        let e = Expr::Fold(list.rc(), lc(0.0).rc(), f.rc());
        let out = run(&compile(&e).unwrap()).unwrap();
        assert_eq!(out.ground_value(), Some(Ground::Loss(LossVal::scalar(6.0))));
    }

    /// Forcing the decision of §2.3's `pgm` replays exactly one branch:
    /// forcing `true` gives loss 2 / 'a', forcing `false` loss 4 / 'b',
    /// and the candidate-0 (all-true) run equals the argmin handler's
    /// actual choice.
    #[test]
    fn forced_runs_enumerate_pgm_branches() {
        let ex = examples::pgm_with_argmin_handler();
        let compiled = compile(&ex.expr).unwrap();
        let forced = |bits: u64| {
            run_with(
                &compiled,
                RunConfig {
                    forced: Some(ForcedChoices {
                        ops: BTreeSet::from(["decide".to_owned()]),
                        bits,
                        max_decisions: 1,
                    }),
                    ..RunConfig::default()
                },
            )
            .unwrap()
        };
        let t = forced(0); // bit 0 ⇒ true
        assert_eq!(t.loss, LossVal::scalar(2.0));
        assert_eq!(t.ground_value(), Some(Ground::Char('a')));
        assert_eq!(t.decisions_used, 1);
        let f = forced(1);
        assert_eq!(f.loss, LossVal::scalar(4.0));
        assert_eq!(f.ground_value(), Some(Ground::Char('b')));
        // The argmin handler picks the loss-2 branch — candidate 0.
        let real = run(&compiled).unwrap();
        assert_eq!(real.loss, t.loss);
        assert_eq!(real.ground_value(), t.ground_value());
    }

    #[test]
    fn forced_run_prunes_on_dominated_partial() {
        let ex = examples::pgm_with_argmin_handler();
        let compiled = compile(&ex.expr).unwrap();
        let threshold = Arc::new(AtomicU64::new(u64::MAX));
        let encode = |l: &LossVal| {
            // The f64 sort-key embedding (sign-flip trick) on the scalar.
            let bits = l.as_scalar().to_bits();
            if bits >> 63 == 1 {
                !bits
            } else {
                bits | (1 << 63)
            }
        };
        // Publish an achieved loss of 3.0: the loss-4 branch must abort.
        threshold.store(encode(&LossVal::scalar(3.0)), Ordering::Relaxed);
        let cfg = |bits| RunConfig {
            forced: Some(ForcedChoices {
                ops: BTreeSet::from(["decide".to_owned()]),
                bits,
                max_decisions: 1,
            }),
            prune: Some(MachinePrune { threshold: Arc::clone(&threshold), encode }),
            fuel: 0,
        };
        assert_eq!(run_with(&compiled, cfg(1)).unwrap_err(), MachError::Pruned);
        // The loss-2 branch survives.
        let ok = run_with(&compiled, cfg(0)).unwrap();
        assert_eq!(ok.loss, LossVal::scalar(2.0));
    }

    fn tree_cfg(ops: &[&str], prefix_bits: u64, prefix_len: u32, max: u32) -> TreeRunConfig {
        TreeRunConfig {
            fuel: 0,
            choices: TreeChoices {
                ops: ops.iter().map(|s| (*s).to_owned()).collect(),
                prefix_bits,
                prefix_len,
                max_decisions: max,
            },
            prune: None,
        }
    }

    #[test]
    fn explore_suspends_at_the_first_decision_and_resumes_multi_shot() {
        let ex = examples::pgm_with_argmin_handler();
        let compiled = compile(&ex.expr).unwrap();
        let Explored::Choice(point) = explore(&compiled, tree_cfg(&["decide"], 0, 0, 1)).unwrap()
        else {
            panic!("pgm must suspend at its decide");
        };
        assert_eq!(point.depth(), 0);
        assert!(point.partial_loss().is_zero());
        let run = |d: bool| match point.resume(d).unwrap() {
            Explored::Done(out) => out,
            Explored::Choice(_) => panic!("depth-1 program cannot suspend twice"),
        };
        let t = run(true);
        assert_eq!(t.loss, LossVal::scalar(2.0));
        assert_eq!(t.ground_value(), Some(Ground::Char('a')));
        assert_eq!(t.decisions_used, 1);
        let f = run(false);
        assert_eq!(f.loss, LossVal::scalar(4.0));
        assert_eq!(f.ground_value(), Some(Ground::Char('b')));
        // Multi-shot: a second resume of the same branch is bit-identical.
        let t2 = run(true);
        assert_eq!((t2.loss.clone(), t2.ground_value()), (t.loss.clone(), t.ground_value()));
    }

    /// Full-tree DFS through explore/resume must reproduce every forced
    /// path bit-identically (loss, terminal, decisions used).
    #[test]
    fn tree_leaves_match_replayed_forced_runs() {
        let p = crate::testgen::deep_decide_chain(4);
        let compiled = compile(&p.expr).unwrap();
        let ops = BTreeSet::from(["decide".to_owned()]);
        let mut leaves: Vec<(u64, MachineOutcome)> = Vec::new();
        fn dfs(r: Explored, bits: u64, depth: u32, leaves: &mut Vec<(u64, MachineOutcome)>) {
            match r {
                Explored::Done(out) => {
                    assert_eq!(out.decisions_used, depth, "chain paths use every decision");
                    leaves.push((bits, out));
                }
                Explored::Choice(point) => {
                    assert_eq!(point.depth(), depth);
                    // `true` is bit 0, appended at the low end as the
                    // candidate encoding prescribes.
                    dfs(point.resume(true).unwrap(), bits << 1, depth + 1, leaves);
                    dfs(point.resume(false).unwrap(), (bits << 1) | 1, depth + 1, leaves);
                }
            }
        }
        dfs(explore(&compiled, tree_cfg(&["decide"], 0, 0, 4)).unwrap(), 0, 0, &mut leaves);
        assert_eq!(leaves.len(), 16);
        for (bits, out) in leaves {
            let forced = run_with(
                &compiled,
                RunConfig {
                    forced: Some(ForcedChoices { ops: ops.clone(), bits, max_decisions: 4 }),
                    ..RunConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.loss, forced.loss, "bits {bits:#b}");
            assert_eq!(out.ground_value(), forced.ground_value(), "bits {bits:#b}");
            assert_eq!(out.decisions_used, forced.decisions_used, "bits {bits:#b}");
        }
    }

    #[test]
    fn scripted_prefix_fast_forwards_to_the_subtree() {
        let p = crate::testgen::deep_decide_chain(3);
        let compiled = compile(&p.expr).unwrap();
        // Script the first two decisions as (false, true) = bits 0b10.
        let Explored::Choice(point) =
            explore(&compiled, tree_cfg(&["decide"], 0b10, 2, 3)).unwrap()
        else {
            panic!("one decision must remain");
        };
        assert_eq!(point.depth(), 2);
        for d in [true, false] {
            let Explored::Done(out) = point.resume(d).unwrap() else {
                panic!("three decisions exhaust the chain");
            };
            let forced = run_with(
                &compiled,
                RunConfig {
                    forced: Some(ForcedChoices {
                        ops: BTreeSet::from(["decide".to_owned()]),
                        bits: 0b100 | u64::from(!d),
                        max_decisions: 3,
                    }),
                    ..RunConfig::default()
                },
            )
            .unwrap();
            assert_eq!(out.loss, forced.loss, "decision {d}");
        }
    }

    #[test]
    fn tree_mode_rejects_exhausted_decision_budgets() {
        let ex = examples::pgm_with_argmin_handler();
        let compiled = compile(&ex.expr).unwrap();
        let r = explore(&compiled, tree_cfg(&["decide"], 0, 0, 0));
        assert_eq!(r.unwrap_err(), MachError::DecisionsExhausted);
    }

    #[test]
    fn tree_branches_prune_against_their_own_path_total() {
        // Chain: decide; loss(2 | 4); decide; loss(2 | 4); 0 — with an
        // achieved bound of 7, the (false, false) path (4 + 4) must abort
        // while every other path survives: the partial snapshots per
        // branch, so the abort does not leak into (false, true).
        use crate::build::*;
        use crate::types::{Effect, Type};
        let eamb = Effect::single("amb");
        let mut body = lc(0.0);
        for i in (0..2).rev() {
            body = let_(
                eamb.clone(),
                &format!("b{i}"),
                Type::bool(),
                op("decide", unit()),
                seq(
                    eamb.clone(),
                    Type::unit(),
                    loss(if_(v(&format!("b{i}")), lc(2.0), lc(4.0))),
                    body,
                ),
            );
        }
        let e = handle0(crate::testgen::argmin_handler(&Type::loss(), &Effect::empty()), body);
        let compiled = compile(&e).unwrap();
        let threshold = Arc::new(AtomicU64::new(u64::MAX));
        let encode = |l: &LossVal| {
            let bits = l.as_scalar().to_bits();
            if bits >> 63 == 1 {
                !bits
            } else {
                bits | (1 << 63)
            }
        };
        threshold.store(encode(&LossVal::scalar(7.0)), Ordering::Relaxed);
        let cfg = TreeRunConfig {
            prune: Some(MachinePrune { threshold: Arc::clone(&threshold), encode }),
            ..tree_cfg(&["decide"], 0, 0, 2)
        };
        let Explored::Choice(root) = explore(&compiled, cfg).unwrap() else {
            panic!("suspends at the first decide");
        };
        let Explored::Choice(after_false) = root.resume(false).unwrap() else {
            panic!("suspends at the second decide");
        };
        assert_eq!(after_false.partial_loss(), &LossVal::scalar(4.0));
        assert_eq!(after_false.resume(false).unwrap_err(), MachError::Pruned);
        let Explored::Done(out) = after_false.resume(true).unwrap() else {
            panic!("two decisions exhaust the chain");
        };
        assert_eq!(out.loss, LossVal::scalar(6.0));
        let Explored::Choice(after_true) = root.resume(true).unwrap() else {
            panic!("suspends at the second decide");
        };
        assert_eq!(after_true.partial_loss(), &LossVal::scalar(2.0));
    }

    #[test]
    fn forced_run_rejects_too_few_decisions() {
        let ex = examples::pgm_with_argmin_handler();
        let compiled = compile(&ex.expr).unwrap();
        let r = run_with(
            &compiled,
            RunConfig {
                forced: Some(ForcedChoices {
                    ops: BTreeSet::from(["decide".to_owned()]),
                    bits: 0,
                    max_decisions: 0,
                }),
                ..RunConfig::default()
            },
        );
        assert_eq!(r.unwrap_err(), MachError::DecisionsExhausted);
    }
}
