//! A small builder DSL for writing λC programs in Rust.
//!
//! The paper writes programs with the sugar
//! `x ← e1; e2  ≜  (λx. e2) e1`; this module provides that and friends so
//! the examples read close to the paper. All builders take and return plain
//! [`Expr`] values.

use crate::syntax::{Expr, Handler, OpClause, RetClause};
use crate::types::{Effect, Type};
use std::rc::Rc;

/// A variable reference.
pub fn v(name: &str) -> Expr {
    assert!(!name.starts_with('%'), "names starting with '%' are reserved for the machine");
    Expr::Var(name.to_owned())
}

/// A scalar loss constant.
pub fn lc(x: f64) -> Expr {
    Expr::lossc(x)
}

/// A character constant.
pub fn ch(c: char) -> Expr {
    Expr::Const(crate::syntax::Const::Char(c))
}

/// A string constant.
pub fn s(text: &str) -> Expr {
    Expr::Const(crate::syntax::Const::Str(text.to_owned()))
}

/// The unit value.
pub fn unit() -> Expr {
    Expr::unit()
}

/// An abstraction `λε x:σ. body`.
pub fn lam(eff: Effect, x: &str, ty: Type, body: Expr) -> Expr {
    Expr::Lam { eff, var: x.to_owned(), ty, body: body.rc() }
}

/// An application `f a`.
pub fn app(f: Expr, a: Expr) -> Expr {
    Expr::App(f.rc(), a.rc())
}

/// The sequencing sugar `x ← e1; e2` at effect `ε`, i.e. `(λε x:σ. e2) e1`.
pub fn let_(eff: Effect, x: &str, ty: Type, e1: Expr, e2: Expr) -> Expr {
    app(lam(eff, x, ty, e2), e1)
}

/// The sugar `e1; e2` (sequence, discarding the first result of type `σ`).
pub fn seq(eff: Effect, ty: Type, e1: Expr, e2: Expr) -> Expr {
    let_(eff, "_seq", ty, e1, e2)
}

/// A tuple.
pub fn tuple(es: Vec<Expr>) -> Expr {
    Expr::Tuple(es.into_iter().map(Expr::rc).collect())
}

/// A pair.
pub fn pair(a: Expr, b: Expr) -> Expr {
    tuple(vec![a, b])
}

/// Projection `e.i` (0-based).
pub fn proj(e: Expr, i: usize) -> Expr {
    Expr::Proj(e.rc(), i)
}

/// `if c then t else f` — case analysis on the boolean sum.
pub fn if_(c: Expr, t: Expr, f: Expr) -> Expr {
    Expr::Cases {
        scrut: c.rc(),
        lvar: "_t".to_owned(),
        lty: Type::unit(),
        lbody: t.rc(),
        rvar: "_f".to_owned(),
        rty: Type::unit(),
        rbody: f.rc(),
    }
}

/// An operation call `op(arg)`.
pub fn op(name: &str, arg: Expr) -> Expr {
    Expr::OpCall { op: name.to_owned(), arg: arg.rc() }
}

/// The built-in `loss(e)` writer effect.
pub fn loss(e: Expr) -> Expr {
    Expr::Loss(e.rc())
}

/// Binary primitive application `f(a, b)`.
pub fn prim2(name: &str, a: Expr, b: Expr) -> Expr {
    Expr::Prim(name.to_owned(), pair(a, b).rc())
}

/// Unary primitive application.
pub fn prim1(name: &str, a: Expr) -> Expr {
    Expr::Prim(name.to_owned(), a.rc())
}

/// `a + b` on losses.
pub fn add(a: Expr, b: Expr) -> Expr {
    prim2("add", a, b)
}

/// `a * b` on losses.
pub fn mul(a: Expr, b: Expr) -> Expr {
    prim2("mul", a, b)
}

/// `a <= b` on losses, returning a boolean.
pub fn leq(a: Expr, b: Expr) -> Expr {
    prim2("leq", a, b)
}

/// `with h from e1 handle e2`.
pub fn handle(h: Handler, from: Expr, body: Expr) -> Expr {
    Expr::Handle { handler: Rc::new(h), from: from.rc(), body: body.rc() }
}

/// `with h handle e` for unit-parameter handlers.
pub fn handle0(h: Handler, body: Expr) -> Expr {
    handle(h, unit(), body)
}

/// The localisation `⟨e⟩^ε_{0_{σ,ε}}` — local with the zero continuation,
/// the form the paper finds sufficient for all its examples (§3.1).
pub fn local0(eff: Effect, ty: Type, e: Expr) -> Expr {
    Expr::Local { eff: eff.clone(), g: Expr::zero_cont(ty, eff).rc(), e: e.rc() }
}

/// `reset e`.
pub fn reset(e: Expr) -> Expr {
    Expr::Reset(e.rc())
}

/// `lreset` (§4.3): `reset ⟨e⟩^ε_0` — combine both localisations, so each
/// iteration of a loop makes decisions based on its own loss.
pub fn lreset(eff: Effect, ty: Type, e: Expr) -> Expr {
    reset(local0(eff, ty, e))
}

/// The then construct `e ◮ λε x:σ. body`.
pub fn then(e: Expr, eff: Effect, x: &str, ty: Type, body: Expr) -> Expr {
    Expr::Then { e: e.rc(), lam: lam(eff, x, ty, body).rc() }
}

/// Builds a non-parameterized handler (parameter type `()`), with clauses
/// written as `(op, |p, x, l, k| body)` binder names.
pub struct HandlerBuilder {
    label: String,
    par_ty: Type,
    body_ty: Type,
    res_ty: Type,
    eff: Effect,
    clauses: Vec<OpClause>,
    ret: Option<RetClause>,
}

impl HandlerBuilder {
    /// Starts a handler for `label` with the given computation type `σ`,
    /// result type `σ'`, and result effect `ε`. Parameter type defaults to
    /// `()`.
    pub fn new(label: &str, body_ty: Type, res_ty: Type, eff: Effect) -> Self {
        HandlerBuilder {
            label: label.to_owned(),
            par_ty: Type::unit(),
            body_ty,
            res_ty,
            eff,
            clauses: Vec::new(),
            ret: None,
        }
    }

    /// Sets the parameter type (for parameterized handlers).
    pub fn par_ty(mut self, ty: Type) -> Self {
        self.par_ty = ty;
        self
    }

    /// Adds an operation clause `op ↦ λ(p, x, l, k). body`.
    pub fn on(mut self, op: &str, p: &str, x: &str, l: &str, k: &str, body: Expr) -> Self {
        self.clauses.push(OpClause {
            op: op.to_owned(),
            p: p.to_owned(),
            x: x.to_owned(),
            l: l.to_owned(),
            k: k.to_owned(),
            body: body.rc(),
        });
        self
    }

    /// Sets the return clause `return ↦ λ(p, x). body`.
    pub fn ret(mut self, p: &str, x: &str, body: Expr) -> Self {
        self.ret = Some(RetClause { p: p.to_owned(), x: x.to_owned(), body: body.rc() });
        self
    }

    /// Finishes the handler. If no return clause was given, the identity
    /// `return ↦ λ(p, x). x` is used (the paper's default).
    pub fn build(self) -> Handler {
        let ret = self.ret.unwrap_or_else(|| RetClause {
            p: "_p".to_owned(),
            x: "_x".to_owned(),
            body: Expr::Var("_x".to_owned()).rc(),
        });
        Handler {
            label: self.label,
            par_ty: self.par_ty,
            body_ty: self.body_ty,
            res_ty: self.res_ty,
            eff: self.eff,
            clauses: self.clauses,
            ret,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigstep::eval_closed;
    use crate::sig::{OpSig, Signature};
    use crate::typecheck::check_program;

    #[test]
    fn let_sugar_is_beta() {
        let sig = Signature::new();
        let e = let_(Effect::empty(), "x", Type::loss(), lc(2.0), add(v("x"), v("x")));
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::loss());
        let out = eval_closed(&sig, e, Type::loss(), Effect::empty()).unwrap();
        assert_eq!(out.terminal, lc(4.0));
    }

    #[test]
    fn if_selects_branch() {
        let sig = Signature::new();
        let e = if_(leq(lc(1.0), lc(2.0)), ch('a'), ch('b'));
        let out =
            eval_closed(&sig, e, Type::Base(crate::types::BaseTy::Char), Effect::empty()).unwrap();
        assert_eq!(out.terminal, ch('a'));
    }

    #[test]
    fn lreset_composes() {
        let sig = Signature::new();
        let e = lreset(Effect::empty(), Type::unit(), loss(lc(3.0)));
        let out = eval_closed(&sig, e, Type::unit(), Effect::empty()).unwrap();
        assert!(out.loss.is_zero());
    }

    #[test]
    fn handler_builder_defaults_identity_return() {
        let mut sig = Signature::new();
        sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
            .unwrap();
        let h = HandlerBuilder::new("amb", Type::bool(), Type::bool(), Effect::empty())
            .on("decide", "p", "x", "l", "k", app(v("k"), pair(v("p"), Expr::tt())))
            .build();
        let e = handle0(h, op("decide", unit()));
        assert_eq!(check_program(&sig, &e, &Effect::empty()).unwrap(), Type::bool());
        let out = eval_closed(&sig, e, Type::bool(), Effect::empty()).unwrap();
        assert_eq!(out.terminal, Expr::tt());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_names_rejected() {
        v("%nope");
    }
}
