//! The paper's example programs, written in λC.
//!
//! Each function returns an [`ExampleProgram`] bundling the signature, the
//! closed expression, its type, and its effect, ready for
//! [`crate::bigstep::eval_closed`], the typechecker, or the denotational
//! semantics. Expected results (asserted in tests and benches):
//!
//! | example | paper | expected |
//! |---------|-------|----------|
//! | [`decide_all`] | §2.2 | `[true, false, false, false]`, loss 0 |
//! | [`pgm_with_argmin_handler`] | §2.3 | `'a'`, loss 2 |
//! | [`counter`] | §3.1 (parameterized handlers) | loss value 3 |
//! | [`moo_divergent`] | §3.4 | diverges; signature not well-founded |
//! | [`minimax`] | §4.3 | `(true, false)` ≙ (Left, Right), loss 3 |
//! | [`password`] | §4.3 | `"password is abc"`, loss 12 |

use crate::build::*;
use crate::sig::{OpSig, Signature};
use crate::syntax::Expr;
use crate::types::{BaseTy, Effect, Type};

/// A closed λC program together with everything needed to run it.
#[derive(Clone, Debug)]
pub struct ExampleProgram {
    /// The effect signature.
    pub sig: Signature,
    /// The closed expression.
    pub expr: Expr,
    /// Its type.
    pub ty: Type,
    /// Its effect (empty for fully handled programs).
    pub eff: Effect,
}

fn amb_sig() -> Signature {
    let mut sig = Signature::new();
    sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .expect("fresh signature");
    sig
}

/// §2.2: perform `decide` twice, return the conjunction, and collect *all*
/// results with a handler that resumes the continuation with both booleans
/// and appends the result lists. Expected value:
/// `[true, false, false, false]`.
pub fn decide_all() -> ExampleProgram {
    let sig = amb_sig();
    let e0 = Effect::empty();
    let eamb = Effect::single("amb");
    let bool_list = Type::List(Box::new(Type::bool()));

    // f ≜ x ← decide(); y ← decide(); x && y
    let f = let_(
        eamb.clone(),
        "x",
        Type::bool(),
        op("decide", unit()),
        let_(
            eamb.clone(),
            "y",
            Type::bool(),
            op("decide", unit()),
            if_(v("x"), v("y"), Expr::ff()),
        ),
    );

    // append xs ys = fold(xs, ys, λ(h, acc). cons(h, acc))
    let append = |xs: Expr, ys: Expr| {
        Expr::Fold(
            xs.rc(),
            ys.rc(),
            lam(
                e0.clone(),
                "z",
                Type::Tuple(vec![Type::bool(), bool_list.clone()]),
                Expr::Cons(proj(v("z"), 0).rc(), proj(v("z"), 1).rc()),
            )
            .rc(),
        )
    };

    // decide ↦ λ(p,x,l,k). k(p,true) ++ k(p,false);  return ↦ λ(p,x). [x]
    let h = HandlerBuilder::new("amb", Type::bool(), bool_list.clone(), e0.clone())
        .on(
            "decide",
            "p",
            "x",
            "l",
            "k",
            append(app(v("k"), pair(v("p"), Expr::tt())), app(v("k"), pair(v("p"), Expr::ff()))),
        )
        .ret("p", "x", Expr::Cons(v("x").rc(), Expr::Nil(Type::bool()).rc()))
        .build();

    ExampleProgram { sig, expr: handle0(h, f), ty: bool_list, eff: Effect::empty() }
}

/// §2.3: the running example
///
/// ```text
/// pgm ≜ b ← decide(); i ← if b then 1 else 2; loss(2*i);
///       if b then 'a' else 'b'
/// ```
///
/// handled by the argmin handler that probes both choice-continuation
/// losses and resumes with the cheaper branch. Expected: `'a'` with loss 2.
pub fn pgm_with_argmin_handler() -> ExampleProgram {
    let sig = amb_sig();
    let e0 = Effect::empty();
    let eamb = Effect::single("amb");
    let chr = Type::Base(BaseTy::Char);

    let pgm = let_(
        eamb.clone(),
        "b",
        Type::bool(),
        op("decide", unit()),
        let_(
            eamb.clone(),
            "i",
            Type::loss(),
            if_(v("b"), lc(1.0), lc(2.0)),
            seq(
                eamb.clone(),
                Type::unit(),
                loss(mul(lc(2.0), v("i"))),
                if_(v("b"), ch('a'), ch('b')),
            ),
        ),
    );

    // decide ↦ λ(p,x,l,k). y ← l(p,true); z ← l(p,false);
    //                      if y <= z then k(p,true) else k(p,false)
    let h = HandlerBuilder::new("amb", chr.clone(), chr.clone(), e0.clone())
        .on(
            "decide",
            "p",
            "x",
            "l",
            "k",
            let_(
                e0.clone(),
                "y",
                Type::loss(),
                app(v("l"), pair(v("p"), Expr::tt())),
                let_(
                    e0.clone(),
                    "z",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::ff())),
                    if_(
                        leq(v("y"), v("z")),
                        app(v("k"), pair(v("p"), Expr::tt())),
                        app(v("k"), pair(v("p"), Expr::ff())),
                    ),
                ),
            ),
        )
        .build();

    ExampleProgram { sig, expr: handle0(h, pgm), ty: chr, eff: Effect::empty() }
}

/// A parameterized handler (§3.1 motivates them for stateful effects): a
/// counter whose `tick` operation returns the number of previous ticks as a
/// loss value. Three ticks yield `0 + 1 + 2 = 3`.
pub fn counter() -> ExampleProgram {
    let mut sig = Signature::new();
    sig.declare("cnt", vec![("tick".into(), OpSig { arg: Type::unit(), ret: Type::loss() })])
        .expect("fresh signature");
    let e0 = Effect::empty();
    let ecnt = Effect::single("cnt");

    // tick ↦ λ(p,x,l,k). k(succ p, nat_to_loss p)
    let h = HandlerBuilder::new("cnt", Type::loss(), Type::loss(), e0)
        .par_ty(Type::Nat)
        .on(
            "tick",
            "p",
            "x",
            "l",
            "k",
            app(v("k"), pair(Expr::Succ(v("p").rc()), prim1("nat_to_loss", v("p")))),
        )
        .build();

    // a ← tick(); b ← tick(); c ← tick(); a + b + c
    let body = let_(
        ecnt.clone(),
        "a",
        Type::loss(),
        op("tick", unit()),
        let_(
            ecnt.clone(),
            "b",
            Type::loss(),
            op("tick", unit()),
            let_(
                ecnt.clone(),
                "c",
                Type::loss(),
                op("tick", unit()),
                add(v("a"), add(v("b"), v("c"))),
            ),
        ),
    );

    ExampleProgram {
        sig,
        expr: handle(h, Expr::nat(0), body),
        ty: Type::loss(),
        eff: Effect::empty(),
    }
}

/// §3.4's divergent program: the `cow` effect whose `moo` operation returns
/// a `cow`-performing thunk, with the handler that feeds `moo` back to
/// itself. Its signature fails [`Signature::check_well_founded`] and
/// evaluation runs forever (exhausts any fuel).
pub fn moo_divergent() -> ExampleProgram {
    let mut sig = Signature::new();
    let thunk_ty = Type::fun(Type::unit(), Type::unit(), Effect::single("cow"));
    sig.declare("cow", vec![("moo".into(), OpSig { arg: Type::unit(), ret: thunk_ty.clone() })])
        .expect("fresh signature");
    let e0 = Effect::empty();
    let ecow = Effect::single("cow");

    // moo ↦ λ(p,x,l,k). k(p, λcow y. moo(())())
    let h = HandlerBuilder::new("cow", Type::unit(), Type::unit(), e0)
        .on(
            "moo",
            "p",
            "x",
            "l",
            "k",
            app(
                v("k"),
                pair(v("p"), lam(ecow.clone(), "y", Type::unit(), app(op("moo", unit()), unit()))),
            ),
        )
        .build();

    // with h handle (moo(()) ())
    let body = app(op("moo", unit()), unit());
    ExampleProgram { sig, expr: handle0(h, body), ty: Type::unit(), eff: Effect::empty() }
}

/// §4.3's two-player minimax game over the loss table
///
/// ```text
///            B: Left   B: Right
/// A: Left       5         3
/// A: Right      2         9
/// ```
///
/// with a maximiser handler for `A`'s move and a minimiser handler for
/// `B`'s. Booleans encode moves (`true` = Left). Expected play:
/// `(true, false)` — A Left, B Right — with loss 3.
pub fn minimax() -> ExampleProgram {
    let mut sig = Signature::new();
    sig.declare("mx", vec![("max2".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .expect("fresh signature");
    sig.declare("mn", vec![("min2".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .expect("fresh signature");
    let e0 = Effect::empty();
    let emx = Effect::single("mx");
    let eboth = Effect::from_labels(["mx", "mn"]);
    let pair_ty = Type::Tuple(vec![Type::bool(), Type::bool()]);

    // a ← max2(); b ← min2(); loss(table a b); (a, b)
    let table = if_(v("a"), if_(v("b"), lc(5.0), lc(3.0)), if_(v("b"), lc(2.0), lc(9.0)));
    let game = let_(
        eboth.clone(),
        "a",
        Type::bool(),
        op("max2", unit()),
        let_(
            eboth.clone(),
            "b",
            Type::bool(),
            op("min2", unit()),
            seq(eboth.clone(), Type::unit(), loss(table), pair(v("a"), v("b"))),
        ),
    );

    // Chooser handler: probe both losses, pick per `pick_left_if`.
    let chooser = |label: &str, op_name: &str, eff: Effect, maximise: bool| {
        let cond = if maximise {
            // pick true iff loss(true) >= loss(false)
            leq(v("z"), v("y"))
        } else {
            leq(v("y"), v("z"))
        };
        HandlerBuilder::new(label, pair_ty.clone(), pair_ty.clone(), eff.clone())
            .on(
                op_name,
                "p",
                "x",
                "l",
                "k",
                let_(
                    eff.clone(),
                    "y",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::tt())),
                    let_(
                        eff.clone(),
                        "z",
                        Type::loss(),
                        app(v("l"), pair(v("p"), Expr::ff())),
                        if_(
                            cond,
                            app(v("k"), pair(v("p"), Expr::tt())),
                            app(v("k"), pair(v("p"), Expr::ff())),
                        ),
                    ),
                ),
            )
            .build()
    };

    let hmin = chooser("mn", "min2", emx.clone(), false);
    let hmax = chooser("mx", "max2", e0, true);

    let expr = handle0(hmax, handle0(hmin, game));
    ExampleProgram { sig, expr, ty: pair_ty, eff: Effect::empty() }
}

/// §4.3's greedy password selection: pick the candidate maximising the
/// downstream reward `len(s) + distinct(s)²`, then return
/// `"password is " ++ s`. Expected: `"password is abc"` with loss 12.
pub fn password() -> ExampleProgram {
    password_with_candidates(vec!["aaa", "aabb", "abc"])
}

/// [`password`] generalised over the candidate list (used by benches to
/// scale the choice set).
pub fn password_with_candidates(cands: Vec<&str>) -> ExampleProgram {
    let mut sig = Signature::new();
    let str_ty = Type::Base(BaseTy::Str);
    let list_str = Type::List(Box::new(str_ty.clone()));
    sig.declare("gr", vec![("pick".into(), OpSig { arg: list_str.clone(), ret: str_ty.clone() })])
        .expect("fresh signature");
    let e0 = Effect::empty();
    let egr = Effect::single("gr");

    // Handler: fold over the candidate list, probing l for each, keeping
    // the maximum; then resume with the winner.
    let acc_ty = Type::Tuple(vec![str_ty.clone(), Type::loss()]);
    let fold_body = lam(
        e0.clone(),
        "zz",
        Type::Tuple(vec![str_ty.clone(), acc_ty.clone()]),
        let_(
            e0.clone(),
            "cand",
            str_ty.clone(),
            proj(v("zz"), 0),
            let_(
                e0.clone(),
                "best",
                acc_ty.clone(),
                proj(v("zz"), 1),
                let_(
                    e0.clone(),
                    "r",
                    Type::loss(),
                    app(v("l"), pair(v("p"), v("cand"))),
                    if_(leq(v("r"), proj(v("best"), 1)), v("best"), pair(v("cand"), v("r"))),
                ),
            ),
        ),
    );
    let pick_clause = let_(
        e0.clone(),
        "chosen",
        acc_ty.clone(),
        Expr::Fold(v("x").rc(), pair(s(""), lc(-1.0e18)).rc(), fold_body.rc()),
        app(v("k"), pair(v("p"), proj(v("chosen"), 0))),
    );
    let h = HandlerBuilder::new("gr", str_ty.clone(), str_ty.clone(), e0)
        .on("pick", "p", "x", "l", "k", pick_clause)
        .build();

    // s ← pick(cands); loss(len s); d ← distinct s; loss(d*d);
    // "password is " ++ s
    let cand_list = Expr::list(str_ty.clone(), cands.into_iter().map(s).collect());
    let body = let_(
        egr.clone(),
        "pw",
        str_ty.clone(),
        op("pick", cand_list),
        seq(
            egr.clone(),
            Type::unit(),
            loss(prim1("str_len", v("pw"))),
            let_(
                egr.clone(),
                "d",
                Type::loss(),
                prim1("str_distinct", v("pw")),
                seq(
                    egr.clone(),
                    Type::unit(),
                    loss(mul(v("d"), v("d"))),
                    prim2("str_append", s("password is "), v("pw")),
                ),
            ),
        ),
    );

    ExampleProgram { sig, expr: handle0(h, body), ty: str_ty, eff: Effect::empty() }
}

/// §4.3's `tuneLR` in the calculus: a handler that *changes the answer
/// type* (the handled program computes a loss value, the handler returns
/// the chosen learning rate) and *never resumes* its continuation. The
/// program performs `lrate()` once, then records `(3 - 6·α)²` — the
/// squared error after one gradient step on `(p-3)²` from `p = 0` with
/// rate `α`. Grid {1.0, 0.5}: rate 1.0 overshoots (error 9), rate 0.5
/// lands exactly (error 0) — so the handler returns 0.5.
pub fn tune_lr(alpha1: f64, alpha2: f64) -> ExampleProgram {
    let mut sig = Signature::new();
    sig.declare("lr", vec![("lrate".into(), OpSig { arg: Type::unit(), ret: Type::loss() })])
        .expect("fresh signature");
    let e0 = Effect::empty();
    let elr = Effect::single("lr");

    // lrate ↦ λ(p,x,l,k). e1 ← l(p,α1); e2 ← l(p,α2);
    //                     if e1 <= e2 then α1 else α2     (no resumption!)
    // return ↦ λ(p,x). α1
    let h = HandlerBuilder::new("lr", Type::loss(), Type::loss(), e0.clone())
        .on(
            "lrate",
            "p",
            "x",
            "l",
            "k",
            let_(
                e0.clone(),
                "e1",
                Type::loss(),
                app(v("l"), pair(v("p"), lc(alpha1))),
                let_(
                    e0.clone(),
                    "e2",
                    Type::loss(),
                    app(v("l"), pair(v("p"), lc(alpha2))),
                    if_(leq(v("e1"), v("e2")), lc(alpha1), lc(alpha2)),
                ),
            ),
        )
        .ret("p", "x", lc(alpha1))
        .build();

    // α ← lrate(); err ← (3 - 6·α)... as loss: e = sub(3, mul(6, α));
    // loss(e*e); e*e
    let body = let_(
        elr.clone(),
        "alpha",
        Type::loss(),
        op("lrate", unit()),
        let_(
            elr.clone(),
            "err",
            Type::loss(),
            prim2("sub", lc(3.0), mul(lc(6.0), v("alpha"))),
            let_(
                elr.clone(),
                "sq",
                Type::loss(),
                mul(v("err"), v("err")),
                seq(elr.clone(), Type::unit(), loss(v("sq")), v("sq")),
            ),
        ),
    );

    ExampleProgram { sig, expr: handle0(h, body), ty: Type::loss(), eff: Effect::empty() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigstep::{eval, eval_closed};
    use crate::loss::LossVal;
    use crate::prim::{value_to_ground, Ground};
    use crate::smallstep::EvalError;
    use crate::syntax::Const;
    use crate::typecheck::check_program;

    fn run(ex: &ExampleProgram) -> crate::bigstep::EvalOutcome {
        check_program(&ex.sig, &ex.expr, &ex.eff).expect("example typechecks");
        eval_closed(&ex.sig, ex.expr.clone(), ex.ty.clone(), ex.eff.clone()).expect("evaluates")
    }

    #[test]
    fn decide_all_matches_paper() {
        let ex = decide_all();
        let out = run(&ex);
        assert!(out.is_value());
        let g = value_to_ground(&out.terminal).unwrap();
        assert_eq!(
            g,
            Ground::List(vec![
                Ground::bool(true),
                Ground::bool(false),
                Ground::bool(false),
                Ground::bool(false),
            ])
        );
    }

    #[test]
    fn pgm_selects_true_branch_with_loss_2() {
        let ex = pgm_with_argmin_handler();
        let out = run(&ex);
        assert_eq!(out.terminal, Expr::Const(Const::Char('a')));
        assert_eq!(out.loss, LossVal::scalar(2.0));
    }

    #[test]
    fn counter_threads_parameter() {
        let ex = counter();
        let out = run(&ex);
        assert_eq!(out.terminal, Expr::lossc(3.0));
    }

    #[test]
    fn moo_is_rejected_and_diverges() {
        let ex = moo_divergent();
        // The signature violates well-foundedness…
        assert!(ex.sig.check_well_founded().is_err());
        // …the program still typechecks…
        check_program(&ex.sig, &ex.expr, &ex.eff).unwrap();
        // …and evaluation exhausts any fuel.
        let g = Expr::zero_cont(ex.ty.clone(), ex.eff.clone()).rc();
        // Each handling cycle wraps the redex in further `local` frames, so
        // the term grows without bound; a couple of hundred steps is ample
        // evidence of divergence while keeping the term (and the stepper's
        // structural recursion) small.
        let r = eval(&ex.sig, &g, &ex.eff, ex.expr.clone(), 200);
        assert!(matches!(r, Err(EvalError::OutOfFuel { .. })));
    }

    #[test]
    fn minimax_plays_left_right_with_loss_3() {
        let ex = minimax();
        let out = run(&ex);
        let g = value_to_ground(&out.terminal).unwrap();
        assert_eq!(g, Ground::Tuple(vec![Ground::bool(true), Ground::bool(false)]));
        assert_eq!(out.loss, LossVal::scalar(3.0));
    }

    #[test]
    fn password_picks_abc_with_reward_12() {
        let ex = password();
        let out = run(&ex);
        assert_eq!(out.terminal, Expr::Const(Const::Str("password is abc".into())));
        assert_eq!(out.loss, LossVal::scalar(12.0));
    }

    #[test]
    fn tune_lr_returns_the_better_rate_without_resuming() {
        // grid {1.0, 0.5}: one step from 0 on (p-3)² with rate α lands at
        // 6α; error (3-6α)²: α=1 → 9, α=0.5 → 0. Handler returns 0.5.
        let ex = tune_lr(1.0, 0.5);
        let out = run(&ex);
        assert_eq!(out.terminal, Expr::lossc(0.5));
        // the continuation was never resumed, so no loss was recorded
        assert!(out.loss.is_zero(), "loss was {}", out.loss);

        // order in the grid does not matter for a strict winner
        let ex = tune_lr(0.5, 1.0);
        assert_eq!(run(&ex).terminal, Expr::lossc(0.5));
    }

    #[test]
    fn password_scales_to_more_candidates() {
        let ex = password_with_candidates(vec!["aa", "abcd", "xy", "abc"]);
        let out = run(&ex);
        // abcd: 4 + 16 = 20 beats abc: 3 + 9 = 12
        assert_eq!(out.terminal, Expr::Const(Const::Str("password is abcd".into())));
    }
}
