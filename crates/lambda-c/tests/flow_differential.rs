//! The flow differential suite: abstract-interpretation certificates
//! checked against **exhaustive concrete evaluation**. A `NonNegLosses`
//! certificate claims that under forced-choice replay every ambient
//! emission is component-wise non-negative — so this suite replays
//! *every* forced path of certified programs on the machine, recording
//! each ambient partial sum through the prune hook, and demands the
//! partial-sum sequence be monotone non-decreasing from zero (exactly
//! the lower-bound property strict-domination pruning relies on). On
//! top of that: a self-contained pruned-vs-unpruned argmin must agree
//! bit for bit, the `emitted` interval must contain every realised
//! total, the shipped corpora must always earn certificates, and
//! hand-built adversarial programs (negative constants, `sub`, `neg`,
//! opaque op results) must be refused at analysis time.

use lambda_c::flow::{self, FlowReport};
use lambda_c::machine::{self, ForcedChoices, MachError, MachineOutcome, MachinePrune, RunConfig};
use lambda_c::testgen::{self, ProgramGen};
use lambda_c::types::{Effect, Type};
use lambda_c::{compile, CompiledProgram, LossVal};
use proptest::prelude::*;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

fn decide_ops() -> BTreeSet<String> {
    ["decide".to_owned()].into_iter().collect()
}

fn analyze(p: &CompiledProgram) -> FlowReport {
    flow::analyze(p, &["decide"])
}

fn forced_cfg(bits: u64, depth: u32, prune: Option<MachinePrune>) -> RunConfig {
    RunConfig {
        fuel: 0,
        forced: Some(ForcedChoices { ops: decide_ops(), bits, max_decisions: depth }),
        prune,
    }
}

/// The workspace's monotone `u64` embedding of the scalar loss order
/// (`lambda_rt::encode_scalar` re-derived locally: lambda-c tests do
/// not see lambda-rt).
fn encode_scalar(l: &LossVal) -> u64 {
    let b = l.as_scalar().to_bits();
    if b & (1 << 63) == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

thread_local! {
    /// Every ambient partial sum the machine saw, in emission order
    /// (recorded through the prune hook's encode fn; the `u64::MAX`
    /// threshold guarantees nothing is actually pruned).
    static PARTIALS: RefCell<Vec<LossVal>> = const { RefCell::new(Vec::new()) };
}

fn record_partial(l: &LossVal) -> u64 {
    PARTIALS.with(|p| p.borrow_mut().push(l.clone()));
    0 // never above the MAX threshold: the run is observed, not cut
}

/// Runs candidate `bits` with every ambient partial sum recorded.
fn run_recorded(p: &CompiledProgram, bits: u64, depth: u32) -> (MachineOutcome, Vec<LossVal>) {
    PARTIALS.with(|p| p.borrow_mut().clear());
    let hook =
        MachinePrune { threshold: Arc::new(AtomicU64::new(u64::MAX)), encode: record_partial };
    let out = machine::run_with(p, forced_cfg(bits, depth, Some(hook)))
        .expect("forced replay of a corpus program succeeds");
    (out, PARTIALS.with(|p| p.borrow().clone()))
}

/// The certificate's concrete meaning, checked exhaustively: on every
/// forced path the ambient partial sums climb monotonically from zero
/// (component-wise), so any partial is a lower bound on the total.
fn assert_certificate_holds_on_every_path(p: &CompiledProgram, depth: u32, label: &str) {
    let report = analyze(p);
    assert!(
        report.certified(),
        "{label}: expected a certificate, got violations {:?} (inconclusive: {})",
        report.violations,
        report.inconclusive
    );
    for bits in 0..(1u64 << depth) {
        let (out, partials) = run_recorded(p, bits, depth);
        let mut prev = LossVal::zero();
        for (k, cur) in partials.iter().enumerate() {
            for c in 0..2 {
                assert!(
                    cur.component(c) >= prev.component(c),
                    "{label} path {bits}: emission {k} decreased component {c}: \
                     {prev:?} -> {cur:?}"
                );
            }
            prev = cur.clone();
        }
        // The final total is the last partial (or zero when the path
        // emits nothing), and the abstract interval must contain it.
        assert_eq!(partials.last().cloned().unwrap_or_else(LossVal::zero), out.loss);
        assert!(
            report.emitted.contains(&out.loss),
            "{label} path {bits}: emitted bound {} excludes realised {:?}",
            report.emitted,
            out.loss
        );
        for c in 0..2 {
            assert!(out.loss.component(c) >= 0.0, "{label} path {bits}: negative total");
        }
    }
}

/// A self-contained argmin over forced paths: pruned (threshold fed by
/// achieved losses) vs unpruned must pick the same `(loss, index)`.
fn assert_pruning_preserves_the_winner(p: &CompiledProgram, depth: u32, label: &str) {
    let mut best: Option<(u64, LossVal)> = None;
    for bits in 0..(1u64 << depth) {
        let out = machine::run_with(p, forced_cfg(bits, depth, None)).expect("unpruned run");
        if best.as_ref().is_none_or(|(_, l)| out.loss.cmp_scalar(l) == Ordering::Less) {
            best = Some((bits, out.loss));
        }
    }
    let threshold = Arc::new(AtomicU64::new(u64::MAX));
    let mut pruned_best: Option<(u64, LossVal)> = None;
    let mut abandoned = 0u64;
    for bits in 0..(1u64 << depth) {
        let hook = MachinePrune { threshold: Arc::clone(&threshold), encode: encode_scalar };
        match machine::run_with(p, forced_cfg(bits, depth, Some(hook))) {
            Ok(out) => {
                // ordering: Relaxed — single-threaded test loop; the
                // hook's contract only needs a monotone hint anyway.
                threshold.fetch_min(encode_scalar(&out.loss), AtomicOrdering::Relaxed);
                if pruned_best
                    .as_ref()
                    .is_none_or(|(_, l)| out.loss.cmp_scalar(l) == Ordering::Less)
                {
                    pruned_best = Some((bits, out.loss));
                }
            }
            Err(MachError::Pruned) => abandoned += 1,
            Err(e) => panic!("{label} path {bits}: unexpected machine error {e:?}"),
        }
    }
    let (bi, bl) = best.expect("non-empty space");
    let (pi, pl) = pruned_best.expect("the winner itself is never pruned");
    assert_eq!((pi, pl.cmp_scalar(&bl)), (bi, Ordering::Equal), "{label}: winner moved");
    assert_eq!(
        pl.as_scalar().to_bits(),
        bl.as_scalar().to_bits(),
        "{label}: winner loss not bit-identical"
    );
    // On deep chains the strict-domination cut must actually fire —
    // otherwise this test proves nothing about pruning.
    if depth >= 4 {
        assert!(abandoned > 0, "{label}: no path was ever abandoned");
    }
}

#[test]
fn chain_corpus_is_certified_and_prunes_winner_preservingly() {
    for choices in [1, 4, 7] {
        let p = compile(&testgen::deep_decide_chain(choices).expr).unwrap();
        let label = format!("chain {choices}");
        let report = analyze(&p);
        assert_eq!(report.shape.max, Some(u64::from(choices)), "{label}: exact shape");
        assert_eq!(report.shape.min, u64::from(choices), "{label}: every path decides");
        assert_certificate_holds_on_every_path(&p, choices, &label);
        assert_pruning_preserves_the_winner(&p, choices, &label);
    }
}

#[test]
fn paper_example_is_certified_with_its_known_interval() {
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    let p = compile(&ex.expr).unwrap();
    let report = analyze(&p);
    assert!(report.certified());
    // pgm emits loss(2·i), i ∈ {1, 2}: both totals sit in the bound.
    assert!(report.emitted.contains(&LossVal::scalar(2.0)));
    assert!(report.emitted.contains(&LossVal::scalar(4.0)));
    assert_certificate_holds_on_every_path(&p, 1, "pgm");
}

#[test]
fn adversarial_programs_are_refused_at_analysis_time() {
    use lambda_c::build::*;
    let eamb = Effect::single("amb");
    // Each body is wrapped in one decide so the program is a real (if
    // tiny) search; certification must still be refused.
    let adversaries: Vec<(&str, lambda_c::syntax::Expr)> = vec![
        ("negative constant", loss(lc(-1.0))),
        ("negative branch", if_(op("decide", unit()), loss(lc(1.0)), loss(lc(-2.0)))),
        ("sub can cross zero", loss(prim2("sub", lc(1.0), lc(2.0)))),
        ("neg flips the sign", loss(prim1("neg", lc(3.0)))),
        ("mul of mixed signs", loss(mul(lc(-1.0), lc(5.0)))),
    ];
    for (what, body) in adversaries {
        let wrapped = let_(
            eamb.clone(),
            "b",
            Type::bool(),
            op("decide", unit()),
            seq(eamb.clone(), Type::loss(), body, lc(0.0)),
        );
        let e = lambda_c::build::handle0(
            testgen::argmin_handler(&Type::loss(), &Effect::empty()),
            wrapped,
        );
        let p = compile(&e).unwrap();
        let report = analyze(&p);
        assert!(!report.certified(), "{what}: must be refused");
        assert!(
            !report.violations.is_empty() || report.inconclusive,
            "{what}: refusal must carry a reason"
        );
    }
}

#[test]
fn opaque_op_results_are_refused_not_guessed() {
    use lambda_c::build::*;
    // loss(tick()) emits whatever the cnt handler returns — statically
    // unknown, so the analysis must refuse rather than assume.
    let ecnt = Effect::single("cnt");
    let mut g = ProgramGen::new(0);
    let body = seq(ecnt.clone(), Type::loss(), loss(op("tick", unit())), lc(0.0));
    let e = handle0(g.cnt_handler(&Type::loss(), &Effect::empty()), body);
    let p = compile(&e).unwrap();
    let report = analyze(&p);
    assert!(!report.certified(), "opaque emission must not be certified");
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(16))]

    /// The search corpus always earns a certificate, and the
    /// certificate's concrete meaning holds on every forced path.
    #[test]
    fn search_corpus_certificates_hold_exhaustively(seed in 0u64..1000, choices in 1u32..6) {
        let mut g = ProgramGen::new(seed);
        let p = compile(&g.gen_search_program(choices).expr).expect("compiles");
        assert_certificate_holds_on_every_path(&p, choices, &format!("seed {seed}"));
        assert_pruning_preserves_the_winner(&p, choices, &format!("seed {seed}"));
    }

    /// One-direction check on the unconstrained corpus (negative
    /// constants, `sub`, opaque ops all occur): whenever the analysis
    /// *does* certify, the concrete ambient total cannot be negative.
    #[test]
    fn certification_is_sound_on_the_unconstrained_corpus(
        seed in 0u64..2000,
        depth in 1u32..5,
        residual in any::<bool>(),
    ) {
        let mut g = ProgramGen::new(seed);
        let gp = g.gen_program(depth, residual);
        let p = compile(&gp.expr).expect("compiles");
        let report = analyze(&p);
        if report.certified() {
            let out = machine::run(&p).expect("corpus programs run");
            for c in 0..2 {
                prop_assert!(
                    out.loss.component(c) >= 0.0,
                    "seed {seed}: certified but emitted {:?}",
                    out.loss
                );
            }
            prop_assert!(report.emitted.contains(&out.loss));
        }
    }
}
