//! Failure injection: every user-facing error path of the calculus
//! implementation — ill-typed programs, malformed signatures, unhandled
//! operations, fuel exhaustion — surfaces as a structured error (never a
//! panic) with an actionable message.

use lambda_c::build::*;
use lambda_c::sig::{OpSig, SigError, Signature};
use lambda_c::smallstep::EvalError;
use lambda_c::syntax::Expr;
use lambda_c::typecheck::check_program;
use lambda_c::types::{Effect, Type};

fn amb_sig() -> Signature {
    let mut sig = Signature::new();
    sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .unwrap();
    sig
}

#[test]
fn unbound_variable_is_reported_by_name() {
    let sig = Signature::new();
    let err = check_program(&sig, &v("ghost"), &Effect::empty()).unwrap_err();
    assert!(err.0.contains("ghost"), "{err}");
}

#[test]
fn operation_outside_its_effect_is_rejected() {
    let sig = amb_sig();
    let e = op("decide", unit());
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("decide"), "{err}");
    assert!(err.0.contains("not allowed"), "{err}");
}

#[test]
fn unknown_operation_is_rejected() {
    let sig = amb_sig();
    let e = op("teleport", unit());
    let err = check_program(&sig, &e, &Effect::single("amb")).unwrap_err();
    assert!(err.0.contains("teleport"), "{err}");
}

#[test]
fn wrong_operation_argument_type() {
    let sig = amb_sig();
    let e = op("decide", lc(1.0));
    let err = check_program(&sig, &e, &Effect::single("amb")).unwrap_err();
    assert!(err.0.contains("expects"), "{err}");
}

#[test]
fn loss_of_non_loss_rejected() {
    let sig = Signature::new();
    let err = check_program(&sig, &loss(unit()), &Effect::empty()).unwrap_err();
    assert!(err.0.contains("loss"), "{err}");
}

#[test]
fn application_mismatches() {
    let sig = Signature::new();
    // non-function applied
    let e = app(lc(1.0), lc(2.0));
    assert!(check_program(&sig, &e, &Effect::empty()).is_err());
    // wrong argument type
    let f = lam(Effect::empty(), "x", Type::bool(), v("x"));
    let e = app(f, lc(2.0));
    assert!(check_program(&sig, &e, &Effect::empty()).is_err());
}

#[test]
fn handler_must_enumerate_all_operations() {
    let mut sig = Signature::new();
    sig.declare(
        "duo",
        vec![
            ("one".into(), OpSig { arg: Type::unit(), ret: Type::unit() }),
            ("two".into(), OpSig { arg: Type::unit(), ret: Type::unit() }),
        ],
    )
    .unwrap();
    // handler defining only `one`
    let h = HandlerBuilder::new("duo", Type::unit(), Type::unit(), Effect::empty())
        .on("one", "p", "x", "l", "k", app(v("k"), pair(v("p"), unit())))
        .build();
    let e = handle0(h, op("one", unit()));
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("exactly 2 operations"), "{err}");
}

#[test]
fn handler_for_unknown_label_rejected() {
    let sig = Signature::new();
    let h = HandlerBuilder::new("nope", Type::unit(), Type::unit(), Effect::empty())
        .on("op", "p", "x", "l", "k", unit())
        .build();
    let e = handle0(h, unit());
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("nope"), "{err}");
}

#[test]
fn handler_effect_must_match_ambient() {
    let sig = amb_sig();
    // handler annotated with result effect {amb} used at ambient {}
    let h = HandlerBuilder::new("amb", Type::bool(), Type::bool(), Effect::single("amb"))
        .on("decide", "p", "x", "l", "k", app(v("k"), pair(v("p"), Expr::tt())))
        .build();
    let e = handle0(h, op("decide", unit()));
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("ambient"), "{err}");
}

#[test]
fn local_with_wrong_domain_rejected() {
    let sig = Signature::new();
    // localized expr has type loss, but continuation expects bool
    let e = Expr::Local {
        eff: Effect::empty(),
        g: Expr::zero_cont(Type::bool(), Effect::empty()).rc(),
        e: lc(1.0).rc(),
    };
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("domain"), "{err}");
}

#[test]
fn local_annotation_must_be_within_ambient() {
    let sig = amb_sig();
    let e = Expr::Local {
        eff: Effect::single("amb"),
        g: Expr::zero_cont(Type::bool(), Effect::empty()).rc(),
        e: op("decide", unit()).rc(),
    };
    // ambient {} but annotation {amb}
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("not included"), "{err}");
}

#[test]
fn then_body_must_return_loss() {
    let sig = Signature::new();
    let e = then(lc(1.0), Effect::empty(), "x", Type::loss(), unit());
    let err = check_program(&sig, &e, &Effect::empty()).unwrap_err();
    assert!(err.0.contains("loss"), "{err}");
}

#[test]
fn signature_errors_display_cleanly() {
    let mut sig = Signature::new();
    assert_eq!(sig.declare("e", vec![]).unwrap_err().to_string(), "effect `e` has no operations");
    sig.declare("a", vec![("f".into(), OpSig { arg: Type::unit(), ret: Type::unit() })]).unwrap();
    assert_eq!(
        sig.declare("b", vec![("f".into(), OpSig { arg: Type::unit(), ret: Type::unit() })])
            .unwrap_err()
            .to_string(),
        "operation `f` declared twice"
    );
}

#[test]
fn fuel_error_reports_step_count() {
    let ex = lambda_c::examples::moo_divergent();
    let g = Expr::zero_cont(ex.ty.clone(), ex.eff.clone()).rc();
    match lambda_c::eval(&ex.sig, &g, &ex.eff, ex.expr, 150) {
        Err(EvalError::OutOfFuel { steps }) => assert_eq!(steps, 150),
        other => panic!("expected OutOfFuel, got {other:?}"),
    }
}

#[test]
fn unhandled_op_reported_in_big_step_outcome() {
    let sig = amb_sig();
    let out =
        lambda_c::eval_closed(&sig, op("decide", unit()), Type::bool(), Effect::single("amb"))
            .unwrap();
    assert_eq!(out.stuck_on.as_deref(), Some("decide"));
    assert!(!out.is_value());
}

#[test]
fn runtime_errors_on_ill_typed_terms_are_structured() {
    // Deliberately bypass the typechecker: project from a non-tuple.
    let sig = Signature::new();
    let e = proj(lc(1.0), 0);
    let g = Expr::zero_cont(Type::loss(), Effect::empty()).rc();
    match lambda_c::step(&sig, &g, &Effect::empty(), &e) {
        Err(EvalError::Malformed(msg)) => assert!(msg.contains("projection"), "{msg}"),
        other => panic!("expected Malformed, got {other:?}"),
    }
}

#[test]
fn well_foundedness_reports_the_cycle() {
    let ex = lambda_c::examples::moo_divergent();
    match ex.sig.check_well_founded() {
        Err(SigError::NotWellFounded(cycle)) => {
            assert!(cycle.iter().any(|l| l == "cow"));
            assert!(ex.sig.check_well_founded().unwrap_err().to_string().contains("cow"));
        }
        other => panic!("expected NotWellFounded, got {other:?}"),
    }
}
