//! Smoke coverage for the pretty-printer and program builders: every
//! syntactic construct renders, renders deterministically, and the
//! builders produce exactly the sugar the paper defines.

use lambda_c::build::*;
use lambda_c::syntax::{Const, Expr};
use lambda_c::types::{BaseTy, Effect, Type};

#[test]
fn constants_render() {
    assert_eq!(lc(2.0).to_string(), "2");
    assert_eq!(ch('a').to_string(), "'a'");
    assert_eq!(s("hi").to_string(), "\"hi\"");
    assert_eq!(Expr::nat(2).to_string(), "succ(succ(zero))");
    assert_eq!(Expr::lossv(lambda_c::LossVal::pair(1.0, 2.0)).to_string(), "(1, 2)");
}

#[test]
fn composite_expressions_render() {
    assert_eq!(unit().to_string(), "()");
    assert_eq!(pair(lc(1.0), lc(2.0)).to_string(), "(1, 2)");
    assert_eq!(proj(v("x"), 1).to_string(), "x.2");
    assert_eq!(Expr::tt().to_string(), "inl(())");
    assert_eq!(Expr::ff().to_string(), "inr(())");
    assert_eq!(loss(lc(3.0)).to_string(), "loss(3)");
    assert_eq!(op("decide", unit()).to_string(), "decide(())");
    assert_eq!(reset(unit()).to_string(), "reset(())");
    assert_eq!(add(v("a"), v("b")).to_string(), "add((a, b))");
    assert_eq!(Expr::list(Type::loss(), vec![lc(1.0)]).to_string(), "cons(1, nil)");
    assert_eq!(
        Expr::Iter(Expr::nat(1).rc(), lc(0.0).rc(), v("f").rc()).to_string(),
        "iter(succ(zero), 0, f)"
    );
    assert_eq!(
        Expr::Fold(Expr::Nil(Type::loss()).rc(), lc(0.0).rc(), v("f").rc()).to_string(),
        "fold(nil, 0, f)"
    );
}

#[test]
fn binders_render_with_types() {
    let l = lam(Effect::empty(), "x", Type::loss(), v("x"));
    assert_eq!(l.to_string(), "(\\x:loss. x)");
    let c = Expr::Cases {
        scrut: Expr::tt().rc(),
        lvar: "a".into(),
        lty: Type::unit(),
        lbody: lc(1.0).rc(),
        rvar: "b".into(),
        rty: Type::unit(),
        rbody: lc(2.0).rc(),
    };
    assert_eq!(c.to_string(), "(cases inl(()) of a. 1 | b. 2)");
}

#[test]
fn scoping_constructs_render() {
    let e = local0(Effect::empty(), Type::unit(), loss(lc(1.0)));
    assert_eq!(e.to_string(), "<loss(1)>_g");
    let t = then(lc(1.0), Effect::empty(), "x", Type::loss(), v("x"));
    assert_eq!(t.to_string(), "(1 |> (\\x:loss. x))");
}

#[test]
fn handle_renders_with_label() {
    let h = HandlerBuilder::new("amb", Type::bool(), Type::bool(), Effect::empty())
        .on("decide", "p", "x", "l", "k", app(v("k"), pair(v("p"), Expr::tt())))
        .build();
    let e = handle0(h, v("prog"));
    assert_eq!(e.to_string(), "(with <amb-handler> from () handle prog)");
}

#[test]
fn rendering_is_deterministic() {
    let ex = lambda_c::examples::pgm_with_argmin_handler();
    assert_eq!(ex.expr.to_string(), ex.expr.to_string());
}

#[test]
fn builder_sugar_matches_paper_definitions() {
    // x ← e1; e2 ≜ (λx. e2) e1
    let sugar = let_(Effect::empty(), "x", Type::loss(), lc(1.0), v("x"));
    match sugar {
        Expr::App(f, a) => {
            assert!(matches!(f.as_ref(), Expr::Lam { .. }));
            assert_eq!(*a, lc(1.0));
        }
        other => panic!("let_ must desugar to application, got {other}"),
    }
    // lreset = reset ∘ local0
    let lr = lreset(Effect::empty(), Type::unit(), unit());
    match lr {
        Expr::Reset(inner) => assert!(matches!(inner.as_ref(), Expr::Local { .. })),
        other => panic!("lreset must be reset(local(..)), got {other}"),
    }
    // if_ desugars to cases on the boolean sum
    let i = if_(Expr::tt(), lc(1.0), lc(2.0));
    assert!(matches!(i, Expr::Cases { .. }));
}

#[test]
fn const_types_are_correct() {
    assert_eq!(Const::Loss(lambda_c::LossVal::scalar(1.0)).ty(), Type::loss());
    assert_eq!(Const::Char('x').ty(), Type::Base(BaseTy::Char));
    assert_eq!(Const::Str("s".into()).ty(), Type::Base(BaseTy::Str));
}
