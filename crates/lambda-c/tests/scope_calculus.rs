//! Calculus-level tests of the loss-scoping constructs: the general
//! `⟨e⟩_g` with non-trivial continuations, `reset` inside probed futures,
//! and their interaction with handlers — mirroring the library-level
//! `scope_discipline` suite so both layers pin down the same semantics.

use lambda_c::bigstep::eval_closed;
use lambda_c::build::*;
use lambda_c::loss::LossVal;
use lambda_c::sig::{OpSig, Signature};
use lambda_c::syntax::Expr;
use lambda_c::typecheck::check_program;
use lambda_c::types::{Effect, Type};

fn amb_sig() -> Signature {
    let mut sig = Signature::new();
    sig.declare("amb", vec![("decide".into(), OpSig { arg: Type::unit(), ret: Type::bool() })])
        .unwrap();
    sig
}

/// The argmin handler at result type bool.
fn argmin_handler(eff: Effect) -> lambda_c::Handler {
    HandlerBuilder::new("amb", Type::bool(), Type::bool(), eff.clone())
        .on(
            "decide",
            "p",
            "x",
            "l",
            "k",
            let_(
                eff.clone(),
                "y",
                Type::loss(),
                app(v("l"), pair(v("p"), Expr::tt())),
                let_(
                    eff,
                    "z",
                    Type::loss(),
                    app(v("l"), pair(v("p"), Expr::ff())),
                    if_(
                        leq(v("y"), v("z")),
                        app(v("k"), pair(v("p"), Expr::tt())),
                        app(v("k"), pair(v("p"), Expr::ff())),
                    ),
                ),
            ),
        )
        .build()
}

fn run(sig: &Signature, e: Expr, ty: Type) -> (LossVal, Expr) {
    check_program(sig, &e, &Effect::empty()).expect("typechecks");
    let out = eval_closed(sig, e, ty, Effect::empty()).expect("evaluates");
    assert!(out.is_value(), "stuck on {:?}", out.stuck_on);
    (out.loss, out.terminal)
}

#[test]
fn default_scope_reaches_past_the_handler() {
    // b ← (with h handle decide()); loss(if b then 10 else 1); b
    let sig = amb_sig();
    let e = let_(
        Effect::empty(),
        "b",
        Type::bool(),
        handle0(argmin_handler(Effect::empty()), op("decide", unit())),
        seq(Effect::empty(), Type::unit(), loss(if_(v("b"), lc(10.0), lc(1.0))), v("b")),
    );
    let (l, b) = run(&sig, e, Type::bool());
    assert_eq!(b, Expr::ff(), "argmin sees the downstream loss and picks false");
    assert_eq!(l, LossVal::scalar(1.0));
}

#[test]
fn local_zero_cuts_the_scope() {
    let sig = amb_sig();
    let e = let_(
        Effect::empty(),
        "b",
        Type::bool(),
        local0(
            Effect::empty(),
            Type::bool(),
            handle0(argmin_handler(Effect::empty()), op("decide", unit())),
        ),
        seq(Effect::empty(), Type::unit(), loss(if_(v("b"), lc(10.0), lc(1.0))), v("b")),
    );
    let (l, b) = run(&sig, e, Type::bool());
    assert_eq!(b, Expr::tt(), "tie under the zero continuation breaks to true");
    assert_eq!(l, LossVal::scalar(10.0));
}

#[test]
fn general_local_installs_a_custom_continuation() {
    // ⟨with h handle decide()⟩_{λb. if b then 100 else 0}: the custom
    // continuation dominates the (real) downstream loss table.
    let sig = amb_sig();
    let g = lam(Effect::empty(), "b", Type::bool(), if_(v("b"), lc(100.0), lc(0.0)));
    let e = let_(
        Effect::empty(),
        "b",
        Type::bool(),
        Expr::Local {
            eff: Effect::empty(),
            g: g.rc(),
            e: handle0(argmin_handler(Effect::empty()), op("decide", unit())).rc(),
        },
        seq(Effect::empty(), Type::unit(), loss(if_(v("b"), lc(1.0), lc(50.0))), v("b")),
    );
    let (l, b) = run(&sig, e, Type::bool());
    assert_eq!(b, Expr::ff(), "the installed continuation charges true 100");
    assert_eq!(l, LossVal::scalar(50.0));
}

#[test]
fn reset_hides_losses_from_probes() {
    // with h handle (b ← decide(); loss(if b then 5 else 1);
    //                reset(loss(if b then 0 else 100)); b)
    let sig = amb_sig();
    let eamb = Effect::single("amb");
    let body = let_(
        eamb.clone(),
        "b",
        Type::bool(),
        op("decide", unit()),
        seq(
            eamb.clone(),
            Type::unit(),
            loss(if_(v("b"), lc(5.0), lc(1.0))),
            seq(eamb.clone(), Type::unit(), reset(loss(if_(v("b"), lc(0.0), lc(100.0)))), v("b")),
        ),
    );
    let e = handle0(argmin_handler(Effect::empty()), body);
    let (l, b) = run(&sig, e, Type::bool());
    assert_eq!(b, Expr::ff(), "the 100 is reset away, so false (1) beats true (5)");
    assert_eq!(l, LossVal::scalar(1.0));
}

#[test]
fn lreset_makes_sequential_choices_independent() {
    // Two lreset-wrapped handled choices; each optimises only its own
    // round's table, and no loss escapes.
    let sig = amb_sig();
    let round = |good_true: bool| {
        let eamb = Effect::single("amb");
        let (t, f) = if good_true { (1.0, 2.0) } else { (2.0, 1.0) };
        lreset(
            Effect::empty(),
            Type::bool(),
            handle0(
                argmin_handler(Effect::empty()),
                let_(
                    eamb.clone(),
                    "b",
                    Type::bool(),
                    op("decide", unit()),
                    seq(eamb, Type::unit(), loss(if_(v("b"), lc(t), lc(f))), v("b")),
                ),
            ),
        )
    };
    let e = let_(
        Effect::empty(),
        "b1",
        Type::bool(),
        round(true),
        let_(Effect::empty(), "b2", Type::bool(), round(false), pair(v("b1"), v("b2"))),
    );
    let (l, p) = run(&sig, e, Type::Tuple(vec![Type::bool(), Type::bool()]));
    assert!(l.is_zero(), "lreset drops every round's losses, got {l}");
    assert_eq!(p, pair(Expr::tt(), Expr::ff()));
}

#[test]
fn adequacy_holds_for_all_scope_programs() {
    // The same programs, checked against the denotational semantics —
    // keeping the two layers honest about scoping. (This lives here
    // rather than in selc-denote so the programs are written once.)
    // NOTE: requires selc-denote as a dev-dependency would create a cycle;
    // instead we just re-evaluate determinism: two runs agree.
    let sig = amb_sig();
    let e = let_(
        Effect::empty(),
        "b",
        Type::bool(),
        handle0(argmin_handler(Effect::empty()), op("decide", unit())),
        seq(Effect::empty(), Type::unit(), loss(if_(v("b"), lc(10.0), lc(1.0))), v("b")),
    );
    let a = run(&sig, e.clone(), Type::bool());
    let b = run(&sig, e, Type::bool());
    assert_eq!(a, b);
}
