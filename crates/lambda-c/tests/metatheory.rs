//! Property-based metatheory: the paper's Theorem 3.2 (determinism,
//! progress, type safety) and Theorem 3.5 (termination) checked on
//! thousands of randomly generated well-typed programs.

use lambda_c::bigstep::eval;
use lambda_c::smallstep::{step, StepResult};
use lambda_c::syntax::Expr;
use lambda_c::testgen::{gen_signature, ProgramGen};
use lambda_c::typecheck::{check_program, type_of, Env};
use proptest::prelude::*;

const DEPTH: u32 = 4;
const STEP_BOUND: usize = 500;
const FUEL: u64 = 200_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Theorem 3.2(3) + (4): a well-typed non-terminal expression steps,
    /// and stepping preserves its type — checked along a prefix of the
    /// reduction sequence.
    #[test]
    fn progress_and_preservation(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut g = ProgramGen::new(seed);
        let p = g.gen_program(DEPTH, seed % 3 == 0);
        let ty = check_program(&sig, &p.expr, &p.eff).expect("generated program typechecks");
        prop_assert_eq!(&ty, &p.ty);

        let gcont = Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
        let mut cur = p.expr.clone();
        for _ in 0..STEP_BOUND {
            match step(&sig, &gcont, &p.eff, &cur).expect("stepping never errors on well-typed terms") {
                StepResult::Value => {
                    prop_assert!(cur.is_value());
                    break;
                }
                StepResult::Stuck { op } => {
                    // progress: stuck only on a residual-effect op
                    prop_assert!(p.eff.contains(sig.label_of(&op).unwrap()));
                    break;
                }
                StepResult::Step { expr, .. } => {
                    // preservation: the successor has the same type & effect
                    let ty2 = type_of(&sig, &Env::new(), &expr, &p.eff)
                        .map_err(|e| TestCaseError::fail(format!("preservation failed: {e}\nbefore: {cur}\nafter: {expr}")))?;
                    prop_assert_eq!(&ty2, &p.ty);
                    cur = expr;
                }
            }
        }
    }

    /// Theorem 3.2(2): the step relation is a function — two runs agree
    /// step by step (exercises the determinism of decomposition).
    #[test]
    fn determinism(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut g = ProgramGen::new(seed);
        let p = g.gen_program(DEPTH, false);
        let gcont = Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
        let a = step(&sig, &gcont, &p.eff, &p.expr).unwrap();
        let b = step(&sig, &gcont, &p.eff, &p.expr).unwrap();
        match (a, b) {
            (StepResult::Step { loss: l1, expr: e1 }, StepResult::Step { loss: l2, expr: e2 }) => {
                prop_assert_eq!(l1, l2);
                // fresh-name generation differs between runs; compare up to
                // display after one more evaluation round instead of
                // syntactic equality of machine-generated binders.
                let out1 = eval(&sig, &gcont, &p.eff, e1, FUEL).unwrap();
                let out2 = eval(&sig, &gcont, &p.eff, e2, FUEL).unwrap();
                prop_assert_eq!(out1.loss, out2.loss);
                prop_assert_eq!(out1.terminal, out2.terminal);
            }
            (StepResult::Value, StepResult::Value) => {}
            (StepResult::Stuck { op: o1 }, StepResult::Stuck { op: o2 }) => {
                prop_assert_eq!(o1, o2);
            }
            (x, y) => return Err(TestCaseError::fail(format!("nondeterministic: {x:?} vs {y:?}"))),
        }
    }

    /// Theorem 3.5: every program over the (hierarchical) generator
    /// signature terminates.
    #[test]
    fn termination(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut g = ProgramGen::new(seed);
        let p = g.gen_program(DEPTH, seed % 2 == 0);
        let gcont = Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
        let out = eval(&sig, &gcont, &p.eff, p.expr.clone(), FUEL)
            .expect("hierarchical programs terminate (Thm 3.5)");
        // Corollary: empty residual effect ⇒ the terminal is a value.
        if p.eff.is_empty() {
            prop_assert!(out.stuck_on.is_none());
            prop_assert!(out.terminal.is_value());
        }
    }

    /// Big-step evaluation is a function (Corollary 3.3): evaluating twice
    /// gives the same loss and terminal.
    #[test]
    fn bigstep_deterministic(seed in 0u64..1_000_000) {
        let sig = gen_signature();
        let mut g = ProgramGen::new(seed);
        let p = g.gen_program(3, false);
        let gcont = Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
        let a = eval(&sig, &gcont, &p.eff, p.expr.clone(), FUEL).unwrap();
        let b = eval(&sig, &gcont, &p.eff, p.expr.clone(), FUEL).unwrap();
        prop_assert_eq!(a.loss, b.loss);
        prop_assert_eq!(a.terminal, b.terminal);
        prop_assert_eq!(a.steps, b.steps);
    }
}

/// Values never step (Theorem 3.2(1)) — checked over generated leaves.
#[test]
fn terminal_expressions_do_not_step() {
    let sig = gen_signature();
    let mut g = ProgramGen::new(99);
    for _ in 0..100 {
        let p = g.gen_program(2, false);
        let gcont = Expr::zero_cont(p.ty.clone(), p.eff.clone()).rc();
        let out = eval(&sig, &gcont, &p.eff, p.expr, 100_000).unwrap();
        assert_eq!(
            step(&sig, &gcont, &p.eff, &out.terminal).unwrap(),
            StepResult::Value,
            "terminal value stepped"
        );
    }
}
