//! Cooperative cancellation: one token per search, checked alongside the
//! shared bound.
//!
//! A [`CancelToken`] carries the two ways a long-lived caller abandons a
//! search mid-flight: an explicit [`CancelToken::cancel`] (a client hung
//! up) and an optional wall-clock deadline (a per-request budget
//! expired). Engines poll [`CancelToken::is_cancelled`] in exactly the
//! places they already consult the [`crate::bound::SharedBound`] — the
//! flat scan's per-candidate loop, the parallel workers' claim loop, and
//! the tree walker's interior nodes — so an abort takes effect within
//! one candidate (flat) or one node expansion (tree), not after the
//! queue drains.
//!
//! # Cancellation is *observable*, never *unsound*
//!
//! A cancelled search stops scoring candidates, so the best it returns
//! is only the best **seen so far** — engines report it as
//! [`crate::engine::SearchResult::Cancelled`], never as a completed
//! argmin. Everything a search *publishes* while being cancelled stays
//! sound, because it only ever publishes facts that do not depend on
//! completing:
//!
//! * achieved losses fed to the `SharedBound` (and to best-seen mirrors)
//!   were really achieved by a fully evaluated candidate;
//! * leaf cache entries store fully evaluated paths;
//! * subtree summaries are **not** installed along an aborted path: the
//!   tree walker returns an aborted subtree as inexact with no lower
//!   bound, which the install rules (exact requires both children exact,
//!   bound requires a known lower bound) already refuse.
//!
//! So a timed-out request can never poison a warm cache — the next,
//! un-cancelled search over the same space recomputes what the abort
//! skipped and remains bit-identical to a cold run.

use selc_check::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheaply-cloneable cancel/deadline flag; clones share the flag, so
/// a caller cancels every worker holding a clone at once.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called
    /// (no deadline).
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// The token every convenience `search` runs under: nobody holds a
    /// handle to it and it has no deadline, so it can never fire. The
    /// deadline-free fast path makes the convenience entry points pay
    /// one relaxed atomic load per check, no clock reads.
    #[must_use]
    pub fn never() -> CancelToken {
        CancelToken::default()
    }

    /// A token that fires at `deadline` (and on explicit cancellation).
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken { flag: Arc::new(AtomicBool::new(false)), deadline: Some(deadline) }
    }

    /// A token that fires `budget` from now.
    #[must_use]
    pub fn with_timeout(budget: Duration) -> CancelToken {
        // A budget so large it overflows the clock means "no deadline".
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// Cancels every clone of this token, immediately and permanently.
    pub fn cancel(&self) {
        // ordering: Release — pairs with nothing the flag itself needs
        // (it carries one monotone bit), but orders everything the
        // canceller did before hanging up ahead of the flag becoming
        // visible, so a worker that observes the cancel also observes
        // the caller's final writes (e.g. a result sink being closed).
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the search should stop: explicitly cancelled, or past the
    /// deadline. The flag check is one relaxed load; the clock is read
    /// only when a deadline was set.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        // ordering: Relaxed — polled on the hot claim path. The flag is
        // monotone (false → true, never back), so a stale read only
        // delays the stop by one poll; nothing is read on the strength
        // of observing `true` that would need Acquire here.
        self.flag.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_are_not_cancelled() {
        assert!(!CancelToken::new().is_cancelled());
        assert!(!CancelToken::never().is_cancelled());
    }

    #[test]
    fn cancel_reaches_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled(), "clones share the flag");
        assert!(t.is_cancelled());
    }

    #[test]
    fn past_deadlines_cancel_without_an_explicit_call() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!far.is_cancelled());
    }

    #[test]
    fn saturating_budgets_mean_no_deadline() {
        let t = CancelToken::with_timeout(Duration::from_secs(u64::MAX));
        assert!(!t.is_cancelled());
    }
}

/// Exhaustive small-schedule verification under the `selc_check` model
/// checker (`RUSTFLAGS="--cfg selc_model" cargo test -p selc-engine`).
#[cfg(all(test, selc_model))]
mod model_tests {
    use super::*;
    use crate::queue::WorkQueue;
    use selc_check::model::{check, spawn, Options};

    /// Stop visibility on every schedule: once any thread *observes* the
    /// token as cancelled, every later `claim_unless` through any clone
    /// refuses — cancellation is permanent and never un-observes.
    #[test]
    fn model_observed_cancellation_permanently_refuses_claims() {
        check("cancel-visibility", Options::default(), || {
            let q = std::sync::Arc::new(WorkQueue::new(8));
            let tok = CancelToken::new();
            let canceller = {
                let tok = tok.clone();
                spawn(move || tok.cancel())
            };
            let worker = {
                let (q, tok) = (std::sync::Arc::clone(&q), tok.clone());
                spawn(move || {
                    let saw = tok.is_cancelled();
                    let claim = q.claim_unless(2, &tok);
                    if saw {
                        assert_eq!(claim, None, "a claim after an observed cancel must refuse");
                    }
                })
            };
            canceller.join();
            worker.join();
            // The cancel has been joined: visibility is unconditional now.
            assert!(tok.is_cancelled());
            assert_eq!(q.claim_unless(2, &tok), None);
        });
    }
}
