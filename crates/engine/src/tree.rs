//! Prefix-sharing tree search: DFS over decision subtrees with the
//! shared branch-and-bound bound, beside the flat candidate scan.
//!
//! The flat engines treat a depth-`d` decision space as `2^d` independent
//! candidates, each evaluated from scratch — `O(2^d · d)` work even
//! though all candidates share prefixes. A [`TreeEval`] exposes the space
//! as the *tree* it really is (the backtracking-search shape of Hedges'
//! selection-monad transformers): interior nodes are shared prefix
//! states, `child` extends a prefix by one decision, and a leaf reports
//! the final loss of one complete path — `O(tree nodes)` work total.
//!
//! [`TreeEngine::search`] drives the DFS:
//!
//! * **The bound at every interior node** — completed leaves feed the
//!   same [`SharedBound`] the flat engines use; a subtree whose
//!   lower-bound hint is *strictly* dominated is skipped whole.
//! * **Best-first child ordering** — children are visited cheapest
//!   hint first (ties toward the `true` branch), so small losses are
//!   found early and the bound tightens before the expensive siblings
//!   run. This pays even on one core — it is an evaluation-order
//!   improvement, not a parallelism trick.
//! * **Subtree-granularity distribution** — workers claim decision
//!   *prefixes* of a fixed split depth from the saturating
//!   [`WorkQueue`] (not fixed index chunks), rebuild the subtree root
//!   locally (`enter`), and DFS it; node handles never cross threads,
//!   so non-`Send` evaluator state (e.g. machine continuations) is fine.
//! * **Subtree summaries at every interior node** — evaluators with a
//!   summary table ([`TreeEval::probe_summary`]) answer whole subtrees
//!   from cache: an *exact* entry returns the subtree's argmin in O(1)
//!   (warm repeats become O(depth) walks instead of O(leaves) rescans),
//!   a *bound* entry skips the subtree when strictly dominated by an
//!   achieved loss. Fully-evaluated subtrees install exact entries on
//!   the way back up, pruned ones install bound entries
//!   ([`TreeEval::install_summary`]), and [`TreeEval::seed_bits`] warm-
//!   starts the shared bound from the best previously-achieved loss so
//!   repeats prune from the first node. `SELC_SUMMARIES=0` turns all of
//!   it off (see [`selc_cache::env::summaries_enabled`]).
//!
//! # Determinism
//!
//! The reduction is the engine's usual `(loss, index)` lexicographic
//! merge, where a leaf that used only `u ≤ depth` decisions represents
//! the *smallest* flat index sharing its path (`path << (depth - u)`) —
//! exactly the index the flat scan's left-to-right tie-breaking would
//! credit. Exploration *order* therefore cannot change the winner: every
//! canonical leaf is either visited (and merged under the total order)
//! or skipped only when strictly dominated, so tree, flat, sequential,
//! and parallel searches return bit-identical `(loss, index)` winners,
//! ties included.

use crate::bound::SharedBound;
use crate::cancel::CancelToken;
use crate::engine::{record_search_metrics, Outcome, SearchResult, SearchStats, CLAIM_SPAN};
use crate::queue::WorkQueue;
use crate::threads::configured_threads;
use selc::OrderedLoss;
use selc_cache::{CacheStats, SubtreeSummary, SummaryStats};
use selc_obs::{trace, SpanLabel};
use std::sync::Mutex;

/// Span label for one claimed subtree's depth-first descent; the span
/// argument is the subtree's prefix bits, so a trace row shows *which*
/// part of the space each worker was walking.
static SUBTREE_SPAN: SpanLabel = SpanLabel::new("tree.subtree");

/// One step of tree exploration: what lies at (or just past) a decision
/// prefix.
#[derive(Debug)]
pub enum TreeStep<N, L> {
    /// The path terminated after `used` decisions with final loss `loss`
    /// (`used` may be smaller than the position's length when the
    /// program finishes inside a scripted prefix).
    Leaf {
        /// Total loss of the completed path.
        loss: L,
        /// Decisions the path actually consumed.
        used: u32,
    },
    /// An interior node: a shared prefix state to descend into.
    Node {
        /// The evaluator's node handle (thread-local; never crosses
        /// workers).
        node: N,
        /// A cheap partial-loss estimate for best-first ordering; a true
        /// lower bound on every leaf beneath when
        /// [`TreeEval::hint_is_lower_bound`] holds, enabling subtree
        /// pruning against the shared bound.
        hint: Option<L>,
    },
    /// The evaluator abandoned the subtree mid-expansion (its own
    /// strict-domination check fired — same soundness contract as
    /// [`crate::engine::CandidateEval::eval`] returning `None`).
    Pruned,
}

/// What an evaluator's summary table answered for an interior position —
/// the probe-side view of a [`SubtreeSummary`].
#[derive(Clone, Debug)]
pub enum SummaryProbe<L> {
    /// An exact entry: the subtree beneath the position was fully
    /// evaluated when it was installed, and `(loss, index)` is its true
    /// argmin under the deterministic `(loss, index)` reduction. The
    /// engine returns it as the subtree's answer without descending.
    Exact {
        /// The subtree's argmin loss.
        loss: L,
        /// Flat index of the subtree's winner (canonical crediting).
        index: u64,
    },
    /// A bound entry: `loss` is only a **lower bound** on every candidate
    /// credited beneath the position (the subtree was pruned when it was
    /// installed). Never an answer; the engine may skip the subtree when
    /// the bound is strictly dominated by an achieved loss.
    Bound {
        /// The lower bound.
        loss: L,
    },
    /// Nothing cached for this position.
    Miss,
}

impl<L> From<SubtreeSummary<L>> for SummaryProbe<L> {
    fn from(s: SubtreeSummary<L>) -> SummaryProbe<L> {
        if s.exact {
            SummaryProbe::Exact { loss: s.loss, index: s.index }
        } else {
            SummaryProbe::Bound { loss: s.loss }
        }
    }
}

/// A tree-shaped candidate space over binary decisions.
///
/// Positions are `(path, len)` pairs: `len` decisions taken, decision `j`
/// at bit `len - 1 - j` of `path`, `0` meaning `true` — the flat
/// engines' candidate encoding restricted to a prefix. `depth` is
/// bounded by 62 (indices are `u64`/`usize` bit vectors).
pub trait TreeEval<L: OrderedLoss>: Send + Sync {
    /// A materialised interior node. Need not be `Send`: nodes live and
    /// die on the worker that entered the subtree.
    type Node;

    /// The decision depth of the space (`2^depth` flat candidates).
    fn depth(&self) -> u32;

    /// Materialises the subtree root at `(prefix, len)`, replaying the
    /// `len` scripted decisions. A run that terminates inside the prefix
    /// yields `Leaf { used < len }`.
    fn enter(&self, prefix: u64, len: u32) -> TreeStep<Self::Node, L>;

    /// Takes `decision` at `node`; `(path, len)` is the **child**
    /// position (the parent's path extended by the decision), so
    /// cache-keyed evaluators can probe/store without their own
    /// bookkeeping.
    fn child(
        &self,
        node: &Self::Node,
        decision: bool,
        path: u64,
        len: u32,
    ) -> TreeStep<Self::Node, L>;

    /// Whether node hints are true lower bounds on every leaf beneath
    /// them (e.g. accumulated non-negative losses). When `false`, hints
    /// still order children but never prune.
    fn hint_is_lower_bound(&self) -> bool {
        false
    }

    /// The shallowest depth at which a leaf can occur — a work-partition
    /// hint (e.g. from a static decision-shape analysis). The parallel
    /// walk caps its split depth here: fanning out below the shallowest
    /// leaf makes sibling tasks replay the same shallow leaves instead
    /// of dividing work. Purely a partitioning matter — any value is
    /// winner-safe (canonical-index crediting already deduplicates) —
    /// so the default claims no information.
    fn min_leaf_depth(&self) -> u32 {
        self.depth()
    }

    /// Cache counters accumulated by the evaluator (merged into
    /// [`SearchStats::cache`] after the search).
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Probes the evaluator's subtree-summary table at interior position
    /// `(bits, len)`. Evaluators without a table (the default) always
    /// miss. An implementation must only surface entries installed
    /// against the **same** space state — epoch-bump the table whenever
    /// the program behind the space changes.
    fn probe_summary(&self, _bits: u64, _len: u32) -> SummaryProbe<L> {
        SummaryProbe::Miss
    }

    /// Installs `summary` for interior position `(bits, len)` as the DFS
    /// returns through it: an exact entry when the subtree was fully
    /// evaluated, a bound entry when pruning cut it. Default: no table,
    /// no-op.
    fn install_summary(&self, _bits: u64, _len: u32, _summary: SubtreeSummary<L>) {}

    /// The best *achieved* loss already known for this space, in the
    /// [`OrderedLoss::prune_bits`] encoding — e.g. the best cached leaf
    /// value from a previous search over the same immutable program.
    /// Seeds the [`SharedBound`] before the first leaf completes, so a
    /// warm search prunes from its very first subtree. Soundness: only
    /// report losses some candidate of this space actually attains
    /// (never a lower bound), or pruning could drop the true winner.
    fn seed_bits(&self) -> Option<u64> {
        None
    }
}

/// The tree engine: DFS over decision subtrees with deterministic
/// `(loss, index)` reduction, parallelised at subtree granularity.
#[derive(Clone, Copy, Debug)]
pub struct TreeEngine {
    /// Worker count; 0 means [`configured_threads`] (`SELC_THREADS`).
    pub threads: usize,
    /// Enable branch-and-bound pruning (shared bound + dominated-hint
    /// subtree skips).
    pub prune: bool,
    /// Decision depth at which the tree is split into parallel subtree
    /// work items; 0 picks one that gives each worker ~4 subtrees.
    pub split: u32,
    /// Probe/install interior-node subtree summaries through the
    /// evaluator's [`TreeEval::probe_summary`] / [`TreeEval::install_summary`]
    /// hooks (a no-op for evaluators without a table). Defaults to the
    /// `SELC_SUMMARIES` knob (on unless explicitly disabled).
    pub summaries: bool,
}

impl Default for TreeEngine {
    fn default() -> Self {
        TreeEngine {
            threads: 0,
            prune: true,
            split: 0,
            summaries: selc_cache::env::summaries_enabled(),
        }
    }
}

impl TreeEngine {
    /// `SELC_THREADS` workers, auto split, pruning on.
    pub fn auto() -> TreeEngine {
        TreeEngine::default()
    }

    /// A pool of exactly `threads` workers, auto split, pruning on.
    pub fn with_threads(threads: usize) -> TreeEngine {
        TreeEngine { threads, ..TreeEngine::default() }
    }

    /// The single-worker exhaustive tree walk — the differential oracle
    /// for everything parallel/pruned/cached/summarised above it, so it
    /// keeps both pruning and summaries off.
    pub fn sequential() -> TreeEngine {
        TreeEngine { threads: 1, prune: false, split: 0, summaries: false }
    }

    /// Same engine, pruning disabled (exhaustive fan-out).
    pub fn without_pruning(mut self) -> TreeEngine {
        self.prune = false;
        self
    }

    /// Same engine, subtree summaries disabled (leaf cache only) —
    /// the differential-test and bisection switch.
    pub fn without_summaries(mut self) -> TreeEngine {
        self.summaries = false;
        self
    }

    fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 { configured_threads() } else { self.threads };
        t.max(1)
    }

    /// Argmin over the tree's leaves under the deterministic
    /// `(loss, representative index)` reduction. `None` only when the
    /// evaluator prunes every path (a violation of the strict-domination
    /// contract, but kept non-panicking like the flat engines). Runs
    /// under a token that can never fire; see [`TreeEngine::search_with`]
    /// for deadline/disconnect cancellation.
    pub fn search<L, T>(&self, eval: &T) -> Option<Outcome<L>>
    where
        L: OrderedLoss,
        T: TreeEval<L>,
    {
        self.search_with(eval, &CancelToken::never()).into_outcome()
    }

    /// [`TreeEngine::search`] under a [`CancelToken`], checked at every
    /// interior node alongside the shared bound. When the token fires
    /// the walk unwinds with the best leaf seen so far
    /// ([`SearchResult::Cancelled`]); aborted subtrees return as inexact
    /// with no lower bound, so **no summary is installed along the abort
    /// path** — a cancelled search can tighten caches (its completed
    /// leaves and subtrees are real) but never poison them.
    pub fn search_with<L, T>(&self, eval: &T, cancel: &CancelToken) -> SearchResult<L>
    where
        L: OrderedLoss,
        T: TreeEval<L>,
    {
        let depth = eval.depth();
        assert!(depth <= 62, "decision depth {depth} exceeds the 62-bit index encoding");
        let threads = self.effective_threads().min(1_usize << depth.min(20));
        // Never split below the shallowest possible leaf: subtrees rooted
        // under a leaf all replay that same leaf.
        let split_cap = eval.min_leaf_depth().min(depth);
        let split = if threads == 1 {
            0
        } else if self.split == 0 {
            // ~4 subtrees per worker, at least one decision of split.
            let want = (threads * 4).next_power_of_two().trailing_zeros();
            want.clamp(1, depth).min(split_cap)
        } else {
            self.split.min(depth).min(split_cap)
        };
        let bound = SharedBound::new();
        if self.prune {
            // Warm-start: the best loss a previous search over the same
            // space achieved dominates subtrees before the first leaf of
            // this one completes.
            if let Some(bits) = eval.seed_bits() {
                bound.observe_bits(bits);
            }
        }
        let walker = Walker {
            eval,
            bound: &bound,
            prune: self.prune,
            summaries: self.summaries,
            depth,
            cancel,
        };

        let mut parts: Vec<Partial<L>> = if threads == 1 {
            let mut part = Partial::default();
            let _span = trace::span(&SUBTREE_SPAN, 0);
            let sub = walker.dfs(eval.enter(0, 0), 0, 0, &mut part);
            if let Some(candidate) = sub.best {
                part.merge(candidate);
            }
            vec![part]
        } else {
            let queue = WorkQueue::new(1_usize << split);
            let mut parts = Vec::with_capacity(threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let (queue, walker) = (&queue, &walker);
                        s.spawn(move || {
                            let mut part = Partial::default();
                            // The claim honours the token: a cancelled
                            // worker stops after its current subtree
                            // instead of draining the prefix queue.
                            loop {
                                let claimed = {
                                    let _span = trace::span(&CLAIM_SPAN, 1);
                                    queue.claim_unless(1, cancel)
                                };
                                let Some((start, end)) = claimed else { break };
                                debug_assert_eq!(end, start + 1);
                                let _span = trace::span(&SUBTREE_SPAN, start as u64);
                                let sub = walker.dfs(
                                    walker.eval.enter(start as u64, split),
                                    start as u64,
                                    split,
                                    &mut part,
                                );
                                if let Some(candidate) = sub.best {
                                    part.merge(candidate);
                                }
                                if part.aborted {
                                    break;
                                }
                            }
                            part
                        })
                    })
                    .collect();
                for h in handles {
                    parts.push(h.join().expect("tree worker panicked"));
                }
            });
            // Subtrees never claimed because the token fired at the
            // queue are aborted work too, even if no walker saw the
            // flag mid-DFS; an undrained queue after the pool exits
            // proves claims were refused.
            if queue.claim(1).is_some() {
                if let Some(p) = parts.first_mut() {
                    p.aborted = true;
                }
            }
            parts
        };

        let mut merged = Partial::default();
        for part in parts.drain(..) {
            merged.evaluated += part.evaluated;
            merged.pruned += part.pruned;
            merged.aborted |= part.aborted;
            merged.summary = merged.summary.merged(&part.summary);
            if let Some(candidate) = part.best {
                merged.merge(candidate);
            }
        }
        let stats = SearchStats {
            evaluated: merged.evaluated,
            pruned: merged.pruned,
            threads,
            cache: eval.cache_stats(),
            summary: merged.summary,
        };
        record_search_metrics(&stats, merged.aborted);
        let outcome = merged.best.map(|(loss, index)| Outcome { index, loss, stats });
        if merged.aborted {
            SearchResult::Cancelled(outcome)
        } else {
            SearchResult::Complete(outcome)
        }
    }
}

/// One worker's accumulator: local best plus counters (`evaluated` =
/// canonical leaves scored, `pruned` = subtrees or leaves skipped,
/// `summary` = interior-node summary traffic, `aborted` = the cancel
/// token fired mid-walk and some subtree was left unexplored).
struct Partial<L> {
    best: Option<(L, usize)>,
    evaluated: u64,
    pruned: u64,
    summary: SummaryStats,
    aborted: bool,
}

impl<L> Default for Partial<L> {
    fn default() -> Self {
        Partial {
            best: None,
            evaluated: 0,
            pruned: 0,
            summary: SummaryStats::default(),
            aborted: false,
        }
    }
}

impl<L: OrderedLoss> Partial<L> {
    fn merge(&mut self, candidate: (L, usize)) {
        if self.best.as_ref().is_none_or(|best| crate::engine::better(&candidate, best)) {
            self.best = Some(candidate);
        }
    }
}

struct Walker<'a, L, T> {
    eval: &'a T,
    bound: &'a SharedBound<L>,
    prune: bool,
    summaries: bool,
    depth: u32,
    cancel: &'a CancelToken,
}

/// What one subtree reduced to, threaded back up the DFS so every parent
/// can install its own summary.
struct Sub<L> {
    /// The subtree's canonical contribution: the best `(loss, index)`
    /// among leaves credited inside it. `None` when it credits nothing
    /// (non-canonical early leaves) or pruning cut it before anything
    /// scored. Merged into the worker's [`Partial`] by the DFS caller.
    best: Option<(L, usize)>,
    /// A lower bound on every candidate credited beneath the position,
    /// when one is known: the min of visited losses and skipped
    /// subtrees' own bounds. `None` when an evaluator-side prune left no
    /// value to bound with.
    lb: Option<L>,
    /// Whether the subtree was fully evaluated — no pruning cut any part
    /// of it, so `best` is its true argmin (ties included).
    exact: bool,
}

impl<L: OrderedLoss, T: TreeEval<L>> Walker<'_, L, T> {
    /// DFS from `step`, which sits at position `(bits, len)`; returns
    /// the subtree's reduction (the caller merges `best` upward).
    fn dfs(
        &self,
        step: TreeStep<T::Node, L>,
        bits: u64,
        len: u32,
        part: &mut Partial<L>,
    ) -> Sub<L> {
        match step {
            TreeStep::Pruned => {
                part.pruned += 1;
                // The evaluator proved strict domination but reported no
                // value, so the parent has nothing to bound with.
                Sub { best: None, lb: None, exact: false }
            }
            TreeStep::Leaf { loss, used } => {
                debug_assert!(used <= len, "leaves cannot overshoot their position");
                let tail = len - used;
                // A path that terminated inside a scripted prefix is
                // reachable from every prefix extending it; only the
                // canonical (all-`true` remainder) position counts it.
                if bits & ((1_u64 << tail) - 1) != 0 {
                    // Credited elsewhere, but the loss still lower-bounds
                    // this (single-leaf) subtree, and nothing was cut.
                    return Sub { best: None, lb: Some(loss), exact: true };
                }
                part.evaluated += 1;
                if self.prune {
                    self.bound.observe(&loss);
                }
                let index = ((bits >> tail) << (self.depth - used)) as usize;
                Sub { best: Some((loss.clone(), index)), lb: Some(loss), exact: true }
            }
            TreeStep::Node { node, hint } => {
                // The cancellation check sits where the bound checks do:
                // once per interior node. An aborted subtree reports
                // itself inexact with no lower bound, so no ancestor can
                // install a summary over the hole it leaves — the
                // cancellation-soundness half of the install rules.
                if self.cancel.is_cancelled() {
                    part.aborted = true;
                    return Sub { best: None, lb: None, exact: false };
                }
                if self.summaries {
                    match self.eval.probe_summary(bits, len) {
                        SummaryProbe::Exact { loss, index } => {
                            // The whole subtree in O(1): its cached argmin
                            // is an achieved loss, so it also tightens the
                            // bound like the leaves it stands for would.
                            part.summary.exact_hits += 1;
                            if self.prune {
                                self.bound.observe(&loss);
                            }
                            return Sub {
                                best: Some((loss.clone(), index as usize)),
                                lb: Some(loss),
                                exact: true,
                            };
                        }
                        SummaryProbe::Bound { loss } => {
                            part.summary.bound_hits += 1;
                            // A bound entry is never an answer — but when
                            // strictly dominated by an achieved loss, no
                            // candidate beneath can win or tie, and the
                            // subtree is skipped whole. (It must NOT feed
                            // `bound.observe`: nothing attained it.)
                            if self.prune && self.bound.dominated(&loss) {
                                part.pruned += 1;
                                return Sub { best: None, lb: Some(loss), exact: false };
                            }
                        }
                        SummaryProbe::Miss => part.summary.misses += 1,
                    }
                }
                if self.prune && self.eval.hint_is_lower_bound() {
                    if let Some(h) = &hint {
                        if self.bound.dominated(h) {
                            part.pruned += 1;
                            return Sub { best: None, lb: hint, exact: false };
                        }
                    }
                }
                // Expand both children (one shared-prefix step each),
                // then descend cheapest estimate first so the bound is
                // tight before the expensive sibling runs; ties keep the
                // `true` branch first. No allocation: this runs once per
                // interior node of the hot walk.
                let t_bits = bits << 1;
                let f_bits = (bits << 1) | 1;
                let t_step = self.eval.child(&node, true, t_bits, len + 1);
                let f_step = self.eval.child(&node, false, f_bits, len + 1);
                let false_first =
                    matches!(
                        (estimate(&t_step), estimate(&f_step)),
                        (Some(et), Some(ef)) if ef.cmp_loss(et) == std::cmp::Ordering::Less
                    ) || matches!((estimate(&t_step), estimate(&f_step)), (None, Some(_)));
                let [(first, first_bits), (second, second_bits)] = if false_first {
                    [(f_step, f_bits), (t_step, t_bits)]
                } else {
                    [(t_step, t_bits), (f_step, f_bits)]
                };
                let a = self.dfs(first, first_bits, len + 1, part);
                let b = if part.aborted {
                    // Unwind without touching the sibling: its expansion
                    // already happened (cheap), but its subtree has not.
                    Sub { best: None, lb: None, exact: false }
                } else {
                    self.dfs(second, second_bits, len + 1, part)
                };

                let mut best = a.best;
                if let Some(candidate) = b.best {
                    if best
                        .as_ref()
                        .is_none_or(|current| crate::engine::better(&candidate, current))
                    {
                        best = Some(candidate);
                    }
                }
                let exact = a.exact && b.exact;
                let lb = match (a.lb, b.lb) {
                    (Some(x), Some(y)) => {
                        Some(if y.cmp_loss(&x) == std::cmp::Ordering::Less { y } else { x })
                    }
                    _ => None,
                };
                if self.summaries {
                    if exact {
                        // Fully evaluated: the subtree's true argmin, ties
                        // included — answerable on the next visit.
                        if let Some((loss, index)) = &best {
                            self.eval.install_summary(
                                bits,
                                len,
                                SubtreeSummary::exact(loss.clone(), *index as u64),
                            );
                            part.summary.exact_installs += 1;
                        }
                    } else if let Some(lb) = &lb {
                        // Pruning cut the subtree: the min of what was
                        // seen (losses and skipped subtrees' bounds) is a
                        // lower bound on everything beneath, nothing more.
                        let index = best.as_ref().map_or(0, |(_, i)| *i as u64);
                        self.eval.install_summary(
                            bits,
                            len,
                            SubtreeSummary::bound(lb.clone(), index),
                        );
                        part.summary.bound_installs += 1;
                    }
                }
                Sub { best, lb, exact }
            }
        }
    }
}

/// The ordering estimate of a child step: a leaf's final loss, a node's
/// hint.
fn estimate<N, L>(step: &TreeStep<N, L>) -> Option<&L> {
    match step {
        TreeStep::Leaf { loss, .. } => Some(loss),
        TreeStep::Node { hint, .. } => hint.as_ref(),
        TreeStep::Pruned => None,
    }
}

/// Distributes `count` independent subtree tasks over a worker pool
/// (saturating claim queue, one subtree per claim) and returns the
/// results **in task-index order** — so any merge the caller folds over
/// them is deterministic regardless of which worker ran what.
/// `threads == 0` means [`configured_threads`]. Used by the tree engine's
/// cousins that are not leaf-argmins (e.g. parallel alpha-beta in
/// `selc-games`, where interior nodes alternate min/max).
///
/// # Panics
///
/// Panics if a task panics.
pub fn parallel_subtrees<R, F>(threads: usize, count: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    parallel_subtrees_with(threads, count, &CancelToken::never(), task)
        .expect("a never token cannot cancel")
}

/// [`parallel_subtrees`] under a [`CancelToken`]: workers stop claiming
/// subtrees once the token fires (within one task of cancellation) and
/// the call returns `None` — an incomplete task-result vector has no
/// deterministic merge, so cancellation yields nothing rather than a
/// silently partial fold. `Some` results are always complete.
///
/// # Panics
///
/// Panics if a task panics.
pub fn parallel_subtrees_with<R, F>(
    threads: usize,
    count: usize,
    cancel: &CancelToken,
    task: F,
) -> Option<Vec<R>>
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    let threads =
        (if threads == 0 { configured_threads() } else { threads }).max(1).min(count.max(1));
    if threads <= 1 {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            if cancel.is_cancelled() {
                return None;
            }
            out.push(task(i));
        }
        return Some(out);
    }
    let queue = WorkQueue::new(count);
    let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (queue, slots, task) = (&queue, &slots, &task);
            s.spawn(move || {
                while let Some((i, _)) = queue.claim_unless(1, cancel) {
                    let r = task(i);
                    *slots[i].lock().expect("subtree slot poisoned") = Some(r);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(count);
    for slot in slots {
        out.push(slot.into_inner().expect("subtree slot poisoned")?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{minimize, SequentialEngine};

    /// A synthetic full-depth tree over a flat loss table: node = prefix,
    /// leaf loss = table[path], hints = prefix minimum (a true lower
    /// bound).
    struct TableTree {
        losses: Vec<f64>,
        depth: u32,
        hints: bool,
    }

    impl TableTree {
        fn new(losses: Vec<f64>, hints: bool) -> TableTree {
            let depth = losses.len().trailing_zeros();
            assert_eq!(1 << depth, losses.len(), "table must be a power of two");
            TableTree { losses, depth, hints }
        }

        fn step(&self, path: u64, len: u32) -> TreeStep<(u64, u32), f64> {
            if len == self.depth {
                return TreeStep::Leaf { loss: self.losses[path as usize], used: len };
            }
            let hint = self.hints.then(|| {
                let width = self.depth - len;
                let lo = (path << width) as usize;
                self.losses[lo..lo + (1 << width)].iter().copied().fold(f64::INFINITY, f64::min)
            });
            TreeStep::Node { node: (path, len), hint }
        }
    }

    impl TreeEval<f64> for TableTree {
        type Node = (u64, u32);
        fn depth(&self) -> u32 {
            self.depth
        }
        fn enter(&self, prefix: u64, len: u32) -> TreeStep<(u64, u32), f64> {
            self.step(prefix, len)
        }
        fn child(
            &self,
            _node: &(u64, u32),
            _decision: bool,
            path: u64,
            len: u32,
        ) -> TreeStep<(u64, u32), f64> {
            self.step(path, len)
        }
        fn hint_is_lower_bound(&self) -> bool {
            self.hints
        }
    }

    fn table(seed: u64, n: usize) -> Vec<f64> {
        // Small integer-valued losses force plenty of exact ties.
        (0..n).map(|i| f64::from(((i as u64).wrapping_mul(seed * 2 + 7) % 11) as u32)).collect()
    }

    #[test]
    fn tree_search_matches_the_flat_scan_including_ties() {
        for seed in 0..12 {
            let losses = table(seed, 64);
            let flat =
                minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
            for hints in [false, true] {
                for engine in [
                    TreeEngine::sequential(),
                    TreeEngine::with_threads(1),
                    TreeEngine::with_threads(2),
                    TreeEngine { threads: 3, prune: true, split: 4, summaries: false },
                    TreeEngine::with_threads(4).without_pruning(),
                ] {
                    let eval = TableTree::new(losses.clone(), hints);
                    let out = engine.search(&eval).unwrap();
                    assert_eq!(
                        (out.index, out.loss),
                        (flat.index, flat.loss),
                        "seed {seed} hints {hints} engine {engine:?}"
                    );
                }
            }
        }
    }

    /// Delegates to a [`TableTree`] while claiming a shallow
    /// `min_leaf_depth`, counting how many subtree roots the parallel
    /// walk actually enters.
    struct ShallowLeafTable {
        inner: TableTree,
        min_leaf: u32,
        enters: std::sync::atomic::AtomicUsize,
    }

    impl TreeEval<f64> for ShallowLeafTable {
        type Node = (u64, u32);
        fn depth(&self) -> u32 {
            self.inner.depth()
        }
        fn enter(&self, prefix: u64, len: u32) -> TreeStep<(u64, u32), f64> {
            // ordering: Relaxed — a test counter, no data guarded.
            self.enters.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.enter(prefix, len)
        }
        fn child(
            &self,
            node: &(u64, u32),
            decision: bool,
            path: u64,
            len: u32,
        ) -> TreeStep<(u64, u32), f64> {
            self.inner.child(node, decision, path, len)
        }
        fn min_leaf_depth(&self) -> u32 {
            self.min_leaf
        }
    }

    #[test]
    fn min_leaf_depth_caps_the_parallel_split() {
        let losses = table(5, 64);
        let flat = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        let engine = TreeEngine::with_threads(4).without_pruning().without_summaries();
        // Unconstrained: ~4 subtrees per worker → a split of 4 → 16 roots.
        let wide = ShallowLeafTable {
            inner: TableTree::new(losses.clone(), false),
            min_leaf: 6,
            enters: std::sync::atomic::AtomicUsize::new(0),
        };
        let out = engine.search(&wide).unwrap();
        assert_eq!((out.index, out.loss), (flat.index, flat.loss));
        // ordering: Relaxed — test counter.
        assert_eq!(wide.enters.load(std::sync::atomic::Ordering::Relaxed), 16);
        // A shape hint of "leaves can occur at depth 1" caps the fan-out
        // at 2 subtree roots, same winner.
        let capped = ShallowLeafTable {
            inner: TableTree::new(losses, false),
            min_leaf: 1,
            enters: std::sync::atomic::AtomicUsize::new(0),
        };
        let out = engine.search(&capped).unwrap();
        assert_eq!((out.index, out.loss), (flat.index, flat.loss));
        // ordering: Relaxed — test counter.
        assert_eq!(capped.enters.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn dominated_subtrees_are_pruned_but_never_change_the_winner() {
        // Losses descend towards index 0, so with best-first ordering the
        // `true`-most subtree sets a tight bound early.
        let losses: Vec<f64> = (0..64).map(f64::from).collect();
        let eval = TableTree::new(losses.clone(), true);
        let out = TreeEngine { threads: 1, prune: true, split: 0, summaries: false }
            .search(&eval)
            .unwrap();
        assert_eq!((out.index, out.loss), (0, 0.0));
        assert!(out.stats.pruned > 0, "stats: {:?}", out.stats);
        assert!(out.stats.evaluated < 64, "stats: {:?}", out.stats);
    }

    /// A space where every path starting `false` terminates after one
    /// decision: the early leaf must be counted exactly once, as the
    /// smallest flat index it represents.
    struct ShortFalse;

    impl TreeEval<f64> for ShortFalse {
        type Node = (u64, u32);
        fn depth(&self) -> u32 {
            3
        }
        fn enter(&self, prefix: u64, len: u32) -> TreeStep<(u64, u32), f64> {
            // Positions are only entered at the split depth; replay the
            // decisions one by one like a real scripted machine would.
            let mut step = self.start();
            for j in (0..len).rev() {
                let d = (prefix >> j) & 1 == 0;
                match step {
                    TreeStep::Node { node, .. } => {
                        step = self.child(&node, d, prefix >> j, len - j);
                    }
                    leaf => return leaf,
                }
            }
            step
        }
        fn child(
            &self,
            node: &(u64, u32),
            decision: bool,
            path: u64,
            len: u32,
        ) -> TreeStep<(u64, u32), f64> {
            let (_, nlen) = *node;
            debug_assert_eq!(nlen + 1, len);
            if len == 1 && !decision {
                return TreeStep::Leaf { loss: 0.5, used: 1 };
            }
            if len == 3 {
                return TreeStep::Leaf { loss: f64::from(path as u32), used: 3 };
            }
            TreeStep::Node { node: (path, len), hint: None }
        }
    }

    impl ShortFalse {
        fn start(&self) -> TreeStep<(u64, u32), f64> {
            TreeStep::Node { node: (0, 0), hint: None }
        }
    }

    #[test]
    fn early_leaves_count_once_with_their_representative_index() {
        // Flat view: indices 4..8 share the `false` leaf (loss 0.5, repr
        // index 4); indices 0..4 have losses 0..4. Winner: index 0.
        let flat_losses = [0.0, 1.0, 2.0, 3.0, 0.5, 0.5, 0.5, 0.5];
        let flat = minimize(&SequentialEngine::exhaustive(), 8, |i| flat_losses[i]).unwrap();
        for engine in [
            TreeEngine::sequential(),
            TreeEngine { threads: 4, prune: false, split: 2, summaries: false },
        ] {
            let out = engine.search(&ShortFalse).unwrap();
            assert_eq!((out.index, out.loss), (flat.index, flat.loss), "{engine:?}");
            assert_eq!(out.stats.evaluated, 5, "4 deep leaves + 1 early leaf: {engine:?}");
        }
    }

    #[test]
    fn depth_zero_spaces_have_one_leaf() {
        struct One;
        impl TreeEval<f64> for One {
            type Node = ();
            fn depth(&self) -> u32 {
                0
            }
            fn enter(&self, _p: u64, _l: u32) -> TreeStep<(), f64> {
                TreeStep::Leaf { loss: 7.0, used: 0 }
            }
            fn child(&self, _n: &(), _d: bool, _p: u64, _l: u32) -> TreeStep<(), f64> {
                unreachable!("no interior nodes at depth 0")
            }
        }
        let out = TreeEngine::auto().search(&One).unwrap();
        assert_eq!((out.index, out.loss), (0, 7.0));
    }

    /// A [`TableTree`] with a real summary table (plain mutexed map — the
    /// engine contract, not the sharded cache, is under test here) and an
    /// achieved-loss seed for the shared bound.
    struct SummaryTree {
        inner: TableTree,
        table: Mutex<std::collections::HashMap<(u64, u32), SubtreeSummary<f64>>>,
        seed: Mutex<Option<u64>>,
    }

    impl SummaryTree {
        fn new(losses: Vec<f64>, hints: bool) -> SummaryTree {
            SummaryTree {
                inner: TableTree::new(losses, hints),
                table: Mutex::new(std::collections::HashMap::new()),
                seed: Mutex::new(None),
            }
        }
    }

    impl TreeEval<f64> for SummaryTree {
        type Node = (u64, u32);
        fn depth(&self) -> u32 {
            self.inner.depth()
        }
        fn enter(&self, prefix: u64, len: u32) -> TreeStep<(u64, u32), f64> {
            self.inner.enter(prefix, len)
        }
        fn child(
            &self,
            node: &(u64, u32),
            decision: bool,
            path: u64,
            len: u32,
        ) -> TreeStep<(u64, u32), f64> {
            self.inner.child(node, decision, path, len)
        }
        fn hint_is_lower_bound(&self) -> bool {
            self.inner.hint_is_lower_bound()
        }
        fn probe_summary(&self, bits: u64, len: u32) -> SummaryProbe<f64> {
            match self.table.lock().unwrap().get(&(bits, len)) {
                Some(s) => SummaryProbe::from(*s),
                None => SummaryProbe::Miss,
            }
        }
        fn install_summary(&self, bits: u64, len: u32, summary: SubtreeSummary<f64>) {
            self.table.lock().unwrap().insert((bits, len), summary);
        }
        fn seed_bits(&self) -> Option<u64> {
            *self.seed.lock().unwrap()
        }
    }

    #[test]
    fn warm_exhaustive_repeat_answers_at_the_root() {
        let losses = table(5, 64);
        let flat = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        let eval = SummaryTree::new(losses, false);
        let engine = TreeEngine { threads: 1, prune: false, split: 0, summaries: true };
        let cold = engine.search(&eval).unwrap();
        assert_eq!((cold.index, cold.loss), (flat.index, flat.loss));
        assert_eq!(cold.stats.summary.exact_hits, 0);
        assert_eq!(cold.stats.summary.exact_installs, 63, "every interior node installs");
        assert_eq!(cold.stats.summary.bound_installs, 0, "no pruning, no bound entries");
        let warm = engine.search(&eval).unwrap();
        assert_eq!((warm.index, warm.loss), (flat.index, flat.loss));
        assert_eq!(warm.stats.summary.exact_hits, 1, "one probe, at the root");
        assert_eq!(warm.stats.evaluated, 0, "no leaf re-walked: {:?}", warm.stats);
    }

    #[test]
    fn pruned_runs_install_bound_entries_and_stay_bit_identical() {
        for seed in 0..8 {
            let losses = table(seed, 128);
            let flat =
                minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
            let eval = SummaryTree::new(losses, true);
            for round in 0..3 {
                for engine in [
                    TreeEngine { threads: 1, prune: true, split: 0, summaries: true },
                    TreeEngine { threads: 3, prune: true, split: 2, summaries: true },
                    TreeEngine { threads: 2, prune: false, split: 3, summaries: true },
                ] {
                    let out = engine.search(&eval).unwrap();
                    assert_eq!(
                        (out.index, out.loss),
                        (flat.index, flat.loss),
                        "seed {seed} round {round} engine {engine:?}"
                    );
                }
            }
            let installs: Vec<bool> =
                eval.table.lock().unwrap().values().map(|s| s.exact).collect();
            assert!(installs.iter().any(|e| *e), "seed {seed}: some subtree fully evaluated");
        }
    }

    #[test]
    fn seeded_bound_prunes_from_the_first_subtree() {
        // Losses descend towards index 0; seed the bound with the known
        // winner's loss (achieved by candidate 0) and the whole `false`
        // half of the tree is dominated before any leaf completes.
        let losses: Vec<f64> = (0..64).map(f64::from).collect();
        let eval = SummaryTree::new(losses, true);
        *eval.seed.lock().unwrap() = selc::OrderedLoss::prune_bits(&0.0f64);
        let out = TreeEngine { threads: 1, prune: true, split: 0, summaries: false }
            .search(&eval)
            .unwrap();
        assert_eq!((out.index, out.loss), (0, 0.0), "seeding never changes the winner");
        // Only the winner's own path survives: the winner, its sibling
        // leaf (single leaves are never hint-pruned), and one dominated
        // subtree skip per level above them.
        assert_eq!(out.stats.evaluated, 2, "stats: {:?}", out.stats);
        assert_eq!(out.stats.pruned, 5, "stats: {:?}", out.stats);
    }

    #[test]
    fn bound_entries_are_never_returned_as_answers() {
        // Round 1 prunes hard, installing bound entries everywhere the
        // cut fell. Round 2 runs exhaustively (pruning off): it may not
        // trust any bound entry, so it must re-walk those subtrees and
        // still produce the exhaustive winner.
        let losses = table(9, 64);
        let flat = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        let eval = SummaryTree::new(losses, true);
        let pruned = TreeEngine { threads: 1, prune: true, split: 0, summaries: true }
            .search(&eval)
            .unwrap();
        assert_eq!((pruned.index, pruned.loss), (flat.index, flat.loss));
        assert!(pruned.stats.summary.bound_installs > 0, "stats: {:?}", pruned.stats);
        let exhaustive = TreeEngine { threads: 1, prune: false, split: 0, summaries: true }
            .search(&eval)
            .unwrap();
        assert_eq!((exhaustive.index, exhaustive.loss), (flat.index, flat.loss));
        assert!(
            exhaustive.stats.summary.bound_hits > 0,
            "the pruned run's bound entries were probed (root included) but not trusted: {:?}",
            exhaustive.stats
        );
        // The exhaustive re-walk upgrades the cut subtrees: a third run
        // now answers at the root without touching a leaf.
        let third = TreeEngine { threads: 1, prune: false, split: 0, summaries: true }
            .search(&eval)
            .unwrap();
        assert_eq!((third.index, third.loss), (flat.index, flat.loss));
        assert_eq!(third.stats.summary.exact_hits, 1, "stats: {:?}", third.stats);
        assert_eq!(third.stats.evaluated, 0);
    }

    #[test]
    fn parallel_subtrees_returns_results_in_index_order() {
        for threads in [0, 1, 2, 5] {
            let out = parallel_subtrees(threads, 23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>(), "threads {threads}");
        }
        assert!(parallel_subtrees(3, 0, |i| i).is_empty());
    }

    #[test]
    fn cancelled_parallel_subtrees_return_none_instead_of_a_partial_fold() {
        let cancel = CancelToken::new();
        cancel.cancel();
        for threads in [1, 3] {
            assert!(
                parallel_subtrees_with(threads, 10, &cancel, |i| i).is_none(),
                "threads {threads}"
            );
        }
        assert_eq!(
            parallel_subtrees_with(2, 4, &CancelToken::never(), |i| i + 1),
            Some(vec![1, 2, 3, 4])
        );
    }

    #[test]
    fn cancelled_tree_searches_unwind_without_installing_summaries() {
        // The token fires before the walk starts: every interior node
        // aborts, nothing is evaluated, and — the soundness half — not
        // one summary is installed over the unexplored holes.
        let eval = SummaryTree::new(table(3, 64), false);
        let cancel = CancelToken::new();
        cancel.cancel();
        for engine in [
            TreeEngine { threads: 1, prune: true, split: 0, summaries: true },
            TreeEngine { threads: 3, prune: true, split: 2, summaries: true },
        ] {
            let result = engine.search_with(&eval, &cancel);
            assert!(result.was_cancelled(), "{engine:?}");
            assert!(eval.table.lock().unwrap().is_empty(), "no summary installed: {engine:?}");
        }
        // A later, un-cancelled search over the same evaluator is
        // bit-identical to a cold run — nothing was poisoned.
        let flat = minimize(&SequentialEngine::exhaustive(), 64, |i| eval.inner.losses[i]).unwrap();
        let out = TreeEngine { threads: 2, prune: true, split: 2, summaries: true }
            .search(&eval)
            .unwrap();
        assert_eq!((out.index, out.loss), (flat.index, flat.loss));
    }

    #[test]
    fn mid_walk_cancellation_returns_a_partial_best_and_skips_the_rest() {
        /// Fires the shared token after `trip` leaf evaluations.
        struct Tripping {
            inner: TableTree,
            cancel: CancelToken,
            trip: u64,
            count: std::sync::atomic::AtomicU64,
        }
        impl TreeEval<f64> for Tripping {
            type Node = (u64, u32);
            fn depth(&self) -> u32 {
                self.inner.depth()
            }
            fn enter(&self, prefix: u64, len: u32) -> TreeStep<(u64, u32), f64> {
                self.inner.enter(prefix, len)
            }
            fn child(
                &self,
                node: &(u64, u32),
                decision: bool,
                path: u64,
                len: u32,
            ) -> TreeStep<(u64, u32), f64> {
                let step = self.inner.child(node, decision, path, len);
                if matches!(step, TreeStep::Leaf { .. }) {
                    let n = self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if n + 1 >= self.trip {
                        self.cancel.cancel();
                    }
                }
                step
            }
        }
        let cancel = CancelToken::new();
        let eval = Tripping {
            inner: TableTree::new(table(7, 1 << 12), false),
            cancel: cancel.clone(),
            trip: 4,
            count: Default::default(),
        };
        let result = TreeEngine { threads: 1, prune: false, split: 0, summaries: false }
            .search_with(&eval, &cancel);
        assert!(result.was_cancelled());
        let out = result.into_outcome().expect("some leaves scored before the trip");
        assert!(
            out.stats.evaluated < 64,
            "the 4096-leaf walk stopped near the trip: {:?}",
            out.stats
        );
    }
}
