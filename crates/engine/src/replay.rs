//! Evaluating `Sel` programs as engine candidates — replay per worker.
//!
//! `Sel`/`Eff` trees are `Rc`-woven and cannot cross threads, so the
//! engine never shares a program: it ships a [`ReplaySpace`] factory
//! (plain `Send + Sync` data) and each worker rebuilds candidate `i`'s
//! program locally, runs it, and keeps only the recorded loss. Building a
//! tree is pure, so every replay denotes the same computation and the
//! differential suites can demand bit-identical results.

use crate::bound::SharedBound;
use crate::engine::{CandidateEval, Engine, Outcome};
use selc::{CacheStats, OrderedLoss, ReplaySpace, Sel};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe accumulator for [`CacheStats`] reported by per-candidate
/// program runs (an `Rc`-free mirror of the counters a per-activation
/// [`selc::MemoChoice`] collects — workers record each run's stats here
/// and the evaluator reports the totals into `SearchStats::cache`).
#[derive(Debug, Default)]
pub struct CacheStatsSink {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStatsSink {
    /// Adds one run's counters.
    pub fn record(&self, stats: &CacheStats) {
        // ordering: Relaxed — independent statistics cells; RMW
        // atomicity keeps each total exact, and nothing is published
        // through them.
        self.hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.insertions.fetch_add(stats.insertions, Ordering::Relaxed);
        self.evictions.fetch_add(stats.evictions, Ordering::Relaxed);
    }

    /// The totals accumulated so far.
    pub fn total(&self) -> CacheStats {
        CacheStats {
            // ordering: Relaxed — a statistical scrape; the four loads
            // are not a consistent snapshot under concurrent recorders
            // anyway.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// A [`CandidateEval`] that replays a `Sel` program per candidate and
/// scores it by its recorded loss. The program value is discarded during
/// the search; rebuild the winner with [`SelEval::rebuild`] to recover it
/// (pure replay — same loss, same value).
pub struct SelEval<L, A, R> {
    space: R,
    _marker: PhantomData<fn() -> (L, A)>,
}

impl<L, A, R> SelEval<L, A, R>
where
    L: OrderedLoss,
    A: Clone + 'static,
    R: ReplaySpace<L, A>,
{
    /// Wraps an indexed program factory.
    pub fn new(space: R) -> SelEval<L, A, R> {
        SelEval { space, _marker: PhantomData }
    }

    /// Rebuilds candidate `index`'s program (e.g. the winner's, to run it
    /// for its value).
    pub fn rebuild(&self, index: usize) -> Sel<L, A> {
        self.space.build(index)
    }
}

impl<L, A, R> CandidateEval<L> for SelEval<L, A, R>
where
    L: OrderedLoss,
    A: Clone + 'static,
    R: ReplaySpace<L, A>,
{
    fn eval(&self, index: usize, _bound: &SharedBound<L>) -> Option<L> {
        Some(selc::replay_loss(&self.space.build(index)))
    }
}

/// Searches a family of replayable programs: argmin by recorded loss over
/// `factory(0..space)`, then one extra replay of the winner for its
/// value. Returns `None` for an empty space.
pub fn search_programs<L, A, R, G>(engine: &G, space: usize, factory: R) -> Option<(Outcome<L>, A)>
where
    L: OrderedLoss,
    A: Clone + 'static,
    R: ReplaySpace<L, A>,
    G: Engine,
{
    let eval = SelEval::new(factory);
    let outcome = engine.search(space, &eval)?;
    let (_, value) = eval
        .rebuild(outcome.index)
        .run()
        .expect("replayed winner reached the top level with an unhandled operation");
    Some((outcome, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ParallelEngine, SequentialEngine};
    use selc::loss;

    fn costs() -> Vec<f64> {
        vec![4.0, 2.5, 7.0, 2.5, 9.0]
    }

    #[test]
    fn replayed_programs_score_by_recorded_loss() {
        let cs = costs();
        let factory = move |i: usize| loss(cs[i]).map(move |_| i * 10);
        let (out, value) = search_programs(&SequentialEngine::exhaustive(), 5, factory).unwrap();
        assert_eq!(out.index, 1, "earliest of the tied 2.5s");
        assert_eq!(out.loss, 2.5);
        assert_eq!(value, 10);
    }

    #[test]
    fn parallel_replay_matches_sequential() {
        let cs = costs();
        let cs2 = cs.clone();
        let seq = search_programs(&SequentialEngine::exhaustive(), 5, move |i: usize| {
            loss(cs[i]).map(move |_| i)
        })
        .unwrap();
        let par = search_programs(&ParallelEngine::with_threads(4), 5, move |i: usize| {
            loss(cs2[i]).map(move |_| i)
        })
        .unwrap();
        assert_eq!((seq.0.index, seq.0.loss, seq.1), (par.0.index, par.0.loss, par.1));
    }

    #[test]
    fn cache_sink_accumulates_across_threads() {
        let sink = CacheStatsSink::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let sink = &sink;
                s.spawn(move || {
                    sink.record(&CacheStats { hits: 2, misses: 3, insertions: 3, evictions: 1 });
                });
            }
        });
        assert_eq!(sink.total(), CacheStats { hits: 8, misses: 12, insertions: 12, evictions: 4 });
    }
}
