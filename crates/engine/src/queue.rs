//! The shared work queue: a saturating atomic cursor over a finite index
//! space.
//!
//! Workers claim half-open chunks `[start, end)` of `0..space` from one
//! atomic cursor. The claim is a `fetch_update` that **saturates at
//! `space`** instead of incrementing forever: a bare `fetch_add` keeps
//! growing after exhaustion, and for spaces near `usize::MAX` the cursor
//! can wrap around and hand already-scanned indices out a second time —
//! double-counting stats at best, breaking the deterministic reduction's
//! "every index exactly once" invariant at worst. Saturation makes
//! exhaustion absorbing: once the cursor reaches `space` every later
//! claim returns `None`, forever, on any thread.

use crate::cancel::CancelToken;
use selc_check::sync::atomic::{AtomicUsize, Ordering};

/// A chunked work queue over the index space `0..space`.
#[derive(Debug)]
pub struct WorkQueue {
    cursor: AtomicUsize,
    space: usize,
}

impl WorkQueue {
    /// A fresh queue over `0..space`.
    pub fn new(space: usize) -> WorkQueue {
        WorkQueue { cursor: AtomicUsize::new(0), space }
    }

    /// Claims the next up-to-`chunk` indices, or `None` when the space is
    /// exhausted. Relaxed ordering suffices: the queue only partitions
    /// indices, it carries no data between threads.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0` (a zero-width claim would spin forever).
    pub fn claim(&self, chunk: usize) -> Option<(usize, usize)> {
        assert!(chunk > 0, "work-queue chunks must be non-empty");
        let start = self
            .cursor
            // ordering: Relaxed suffices — the cursor only partitions
            // indices between workers; it publishes no data, and each
            // worker touches only the indices its own RMW returned.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur < self.space).then(|| cur.saturating_add(chunk).min(self.space))
            })
            .ok()?;
        Some((start, start.saturating_add(chunk).min(self.space)))
    }

    /// [`WorkQueue::claim`], refused once `cancel` has fired: a worker
    /// loop driven by this claim stops within one chunk of cancellation
    /// instead of spinning the queue to exhaustion for a caller that is
    /// no longer listening. Work left unclaimed stays claimable (the
    /// cursor is untouched), so counters and any later drain remain
    /// consistent.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`, like [`WorkQueue::claim`].
    pub fn claim_unless(&self, chunk: usize, cancel: &CancelToken) -> Option<(usize, usize)> {
        if cancel.is_cancelled() {
            return None;
        }
        self.claim(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_partition_the_space_in_order() {
        let q = WorkQueue::new(10);
        assert_eq!(q.claim(4), Some((0, 4)));
        assert_eq!(q.claim(4), Some((4, 8)));
        assert_eq!(q.claim(4), Some((8, 10)), "the tail chunk is clipped");
        assert_eq!(q.claim(4), None);
        assert_eq!(q.claim(1), None, "exhaustion is absorbing");
    }

    #[test]
    fn empty_space_yields_nothing() {
        let q = WorkQueue::new(0);
        assert_eq!(q.claim(1), None);
    }

    #[test]
    fn claims_near_usize_max_saturate_instead_of_wrapping() {
        // A bare `fetch_add` cursor would wrap here and hand out index 0
        // again; the saturating claim must return the clipped tail once
        // and then `None` forever.
        let q = WorkQueue::new(usize::MAX);
        q.cursor.store(usize::MAX - 3, Ordering::Relaxed);
        assert_eq!(q.claim(usize::MAX / 2), Some((usize::MAX - 3, usize::MAX)));
        for _ in 0..4 {
            assert_eq!(q.claim(usize::MAX / 2), None, "no wrap-around re-issue");
        }
        assert_eq!(q.cursor.load(Ordering::Relaxed), usize::MAX);
    }

    #[test]
    fn concurrent_claims_cover_every_index_exactly_once() {
        let q = WorkQueue::new(1000);
        let counts: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (q, counts) = (&q, &counts);
                s.spawn(move || {
                    while let Some((start, end)) = q.claim(7) {
                        for c in &counts[start..end] {
                            c.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_chunks_are_rejected() {
        let _ = WorkQueue::new(5).claim(0);
    }

    #[test]
    fn cancelled_tokens_stop_claims_with_work_remaining() {
        let q = WorkQueue::new(1000);
        let cancel = CancelToken::new();
        assert_eq!(q.claim_unless(7, &cancel), Some((0, 7)));
        cancel.cancel();
        assert_eq!(q.claim_unless(7, &cancel), None, "cancellation refuses the claim");
        assert_eq!(q.claim_unless(1, &cancel), None, "…permanently");
        // The refused work was not consumed: an un-cancelled claimant
        // resumes exactly where the cursor stopped.
        assert_eq!(q.claim_unless(7, &CancelToken::never()), Some((7, 14)));
    }

    #[test]
    fn worker_loops_exit_promptly_on_cancel_instead_of_draining_the_queue() {
        // A worker loop over a 10k-index queue whose very first work item
        // fires the token (e.g. the caller hung up). The loop must stop
        // at its next claim — a pre-fix loop would spin all 10k indices
        // to exhaustion for a caller that is no longer listening.
        let q = WorkQueue::new(10_000);
        let cancel = CancelToken::new();
        let mut claimed = 0;
        while let Some((start, end)) = q.claim_unless(3, &cancel) {
            claimed += end - start;
            if start == 0 {
                cancel.cancel(); // the caller disappears mid-queue
            }
        }
        assert_eq!(claimed, 3, "exactly one chunk ran; the rest was abandoned");
        assert_eq!(q.claim(1), Some((3, 4)), "abandoned work was never claimed");
    }
}

/// Exhaustive small-schedule verification under the `selc_check` model
/// checker (`RUSTFLAGS="--cfg selc_model" cargo test -p selc-engine`).
#[cfg(all(test, selc_model))]
mod model_tests {
    use super::*;
    use selc_check::model::{check, spawn, Options};
    use std::sync::Arc;

    /// Two workers draining a small space: across *every* interleaving
    /// (up to the preemption bound), each index is claimed exactly once
    /// and the claims are in-order half-open chunks.
    #[test]
    fn model_claims_partition_the_space_exactly_once() {
        check("queue-partition", Options::default(), || {
            let q = Arc::new(WorkQueue::new(3));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(c) = q.claim(2) {
                            mine.push(c);
                        }
                        mine
                    })
                })
                .collect();
            let mut all: Vec<(usize, usize)> =
                workers.into_iter().flat_map(selc_check::model::JoinHandle::join).collect();
            all.sort_unstable();
            let mut covered = 0usize;
            for (start, end) in all {
                assert_eq!(start, covered, "claims tile the space with no gap or overlap");
                assert!(end > start && end <= 3);
                covered = end;
            }
            assert_eq!(covered, 3, "every index was claimed");
        });
    }

    /// The PR 5 regression, exhaustively: with the cursor a few indices
    /// short of `usize::MAX`, racing claimants get the clipped tail
    /// exactly once and every later claim refuses — no schedule lets
    /// the cursor wrap and re-issue index 0.
    #[test]
    fn model_near_max_claims_saturate_on_every_schedule() {
        check("queue-saturate", Options::default(), || {
            let q = Arc::new(WorkQueue::new(usize::MAX));
            q.cursor.store(usize::MAX - 3, Ordering::Relaxed); // ordering: model fixture setup before spawning
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let q = Arc::clone(&q);
                    spawn(move || {
                        let first = q.claim(usize::MAX / 2);
                        let second = q.claim(usize::MAX / 2);
                        (first, second)
                    })
                })
                .collect();
            let claims: Vec<_> =
                workers.into_iter().map(selc_check::model::JoinHandle::join).collect();
            let tails: Vec<_> =
                claims.iter().flat_map(|(a, b)| [a, b]).filter_map(|c| *c).collect();
            assert_eq!(
                tails,
                vec![(usize::MAX - 3, usize::MAX)],
                "exactly one claimant got the tail, once"
            );
            assert_eq!(q.cursor.load(Ordering::Relaxed), usize::MAX); // ordering: post-join, publication via join
            assert_eq!(q.claim(1), None, "exhaustion is absorbing on every schedule");
        });
    }
}
