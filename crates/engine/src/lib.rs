//! # selc-engine — a parallel, batched selection-search engine
//!
//! The paper's handler semantics turns every choice point into a
//! loss-driven search over candidates, but the `selc` runtime (like the
//! paper's Haskell artifact) explores them strictly sequentially over a
//! non-`Send` `Rc` free-monad tree. This crate is the execution layer
//! that turns candidate exploration into schedulable, parallel, prunable
//! work:
//!
//! * **Replay per worker** — programs cross threads as factories
//!   ([`selc::ReplaySpace`]), never as trees: each worker rebuilds the
//!   candidate's `Sel` program locally (building is pure) and keeps only
//!   the recorded loss. See [`replay`].
//! * **A fixed-size worker pool** — plain `std::thread` workers fed by a
//!   chunked atomic work queue; no external dependencies. Pool size
//!   defaults to the `SELC_THREADS` knob ([`threads::configured_threads`])
//!   so CI and benches are reproducible anywhere.
//! * **Deterministic reduction** — per-worker bests merge lexicographically
//!   by `(loss, index)` under the *total* order [`selc::OrderedLoss`], so
//!   parallel argmin returns bit-identical winners to the sequential scan
//!   regardless of interleaving.
//! * **Branch-and-bound pruning** — workers publish achieved losses into
//!   one atomic word ([`SharedBound`]) and skip candidates whose lower
//!   bound is *strictly* dominated; strictness is exactly what preserves
//!   the deterministic tie-breaking (see [`bound`] for the soundness
//!   argument).
//! * **A sequential fallback** — [`SequentialEngine`] implements the same
//!   [`Engine`] trait and is the oracle of the differential test suites.
//! * **Cache-through evaluation** — a shared `selc-cache` transposition
//!   table threads through a search exactly like the bound does
//!   ([`cached::CachedEval`]): workers stop re-evaluating candidates
//!   another worker — or an earlier search against the same handle —
//!   already scored, and hit/miss/eviction telemetry flows into
//!   [`SearchStats`].
//! * **Prefix-sharing tree search** — spaces that are really decision
//!   *trees* (compiled λC choice points, deep games) run on
//!   [`tree::TreeEngine`]: DFS with the bound consulted at every
//!   interior node, best-first child ordering, and subtree-granularity
//!   work distribution over the saturating [`queue::WorkQueue`] —
//!   bit-identical winners to the flat scan at O(tree nodes) cost.
//!
//! Downstream, `selc-games` root-splits minimax and n-queens,
//! `selc-ml` batches hyperparameter grids, and `selection::par` exposes
//! plain parallel argmin/product adapters — all through this engine.

pub mod bound;
pub mod cached;
pub mod cancel;
pub mod engine;
pub mod queue;
pub mod replay;
pub mod threads;
pub mod tree;

pub use bound::SharedBound;
pub use cached::{search_programs_cached, CachedEval};
pub use cancel::CancelToken;
pub use engine::{
    minimize, CandidateEval, Engine, FnEval, Outcome, ParallelEngine, SearchResult, SearchStats,
    SequentialEngine,
};
pub use queue::WorkQueue;
pub use replay::{search_programs, CacheStatsSink, SelEval};
pub use threads::{configured_threads, THREADS_ENV};
pub use tree::{
    parallel_subtrees, parallel_subtrees_with, SummaryProbe, TreeEngine, TreeEval, TreeStep,
};
