//! The shared best-loss bound for branch-and-bound pruning.
//!
//! Workers publish every loss they *achieve* into one atomic word (via the
//! monotone [`OrderedLoss::prune_bits`] encoding) and consult it to skip
//! candidates whose **lower bound** is already strictly worse than some
//! achieved loss.
//!
//! # Pruning soundness
//!
//! A candidate may be skipped only when `lb > best` **strictly**, where
//! `lb` is a true lower bound on the candidate's final loss and `best` was
//! achieved by some other candidate. Then `final ≥ lb > best ≥ global
//! minimum`, so the skipped candidate can neither win nor *tie* the
//! winner — which is what keeps the deterministic `(loss, index)`
//! reduction bit-identical to the exhaustive sequential scan. A
//! non-strict test (`lb ≥ best`) would break tie-breaking: an
//! earlier-indexed candidate tying the current best could be dropped even
//! though the sequential scan would have kept it.

use selc::OrderedLoss;
use selc_check::sync::atomic::{AtomicU64, Ordering};
use std::marker::PhantomData;

/// Sentinel meaning "no loss achieved yet" — larger than every encoding.
///
/// `u64::MAX` is also the encoding of the largest-payload NaN; publishing
/// such a loss is indistinguishable from publishing nothing, which only
/// forgoes pruning, never unsoundly enables it.
const UNSET: u64 = u64::MAX;

/// The best achieved loss so far, shared across workers as one atomic
/// `u64` in the [`OrderedLoss::prune_bits`] encoding.
///
/// All operations use relaxed ordering: the bound is a monotone hint —
/// reading a stale (larger) value only misses a pruning opportunity.
pub struct SharedBound<L> {
    bits: AtomicU64,
    _marker: PhantomData<fn(&L)>,
}

impl<L: OrderedLoss> Default for SharedBound<L> {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl<L: OrderedLoss> SharedBound<L> {
    /// A bound with no achieved loss yet (nothing is dominated).
    pub fn new() -> SharedBound<L> {
        SharedBound { bits: AtomicU64::new(UNSET), _marker: PhantomData }
    }

    /// Publishes an *achieved* loss, tightening the bound if it improves.
    pub fn observe(&self, achieved: &L) {
        if let Some(bits) = achieved.prune_bits() {
            self.observe_bits(bits);
        }
    }

    /// Publishes an already-encoded *achieved* loss (the
    /// [`OrderedLoss::prune_bits`] encoding). The soundness condition is
    /// the same as [`SharedBound::observe`]'s: `bits` must encode a loss
    /// some candidate of **this** space actually attains — e.g. the best
    /// cached value from a previous search over the same immutable
    /// program, which is how warm searches seed the bound before the
    /// first batch. Never seed with a lower bound: domination is checked
    /// against achieved losses, and an unattained value could prune the
    /// true winner.
    pub fn observe_bits(&self, bits: u64) {
        // ordering: Relaxed — the bound is a monotone hint. fetch_min
        // never loosens it, and a reader seeing a stale (larger) value
        // only misses a pruning opportunity; no data is published
        // through this word.
        self.bits.fetch_min(bits, Ordering::Relaxed);
    }

    /// Is a candidate with lower bound `lb` strictly dominated by an
    /// achieved loss? `false` whenever nothing was achieved yet or `L`
    /// has no pruning encoding — pruning degrades to exhaustive search.
    pub fn dominated(&self, lb: &L) -> bool {
        match lb.prune_bits() {
            // ordering: Relaxed — staleness is safe in one direction
            // only: a stale *larger* value under-prunes. The strict `>`
            // against an achieved loss is what keeps pruning sound (see
            // the module docs); no ordering strengthens or weakens that.
            Some(bits) => bits > self.bits.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// Has any loss been published?
    pub fn is_set(&self) -> bool {
        // ordering: Relaxed — same monotone-hint argument as `dominated`.
        self.bits.load(Ordering::Relaxed) != UNSET
    }
}

impl<L: OrderedLoss> std::fmt::Debug for SharedBound<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // ordering: Relaxed — diagnostic snapshot only.
        write!(f, "SharedBound(bits = {:#x})", self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_bound_dominates_nothing() {
        let b: SharedBound<f64> = SharedBound::new();
        assert!(!b.is_set());
        assert!(!b.dominated(&f64::NEG_INFINITY));
        assert!(!b.dominated(&f64::INFINITY));
    }

    #[test]
    fn observe_tightens_monotonically() {
        let b: SharedBound<f64> = SharedBound::new();
        b.observe(&5.0);
        assert!(b.is_set());
        assert!(b.dominated(&6.0));
        assert!(!b.dominated(&5.0), "equality is not strict domination");
        assert!(!b.dominated(&4.0));
        b.observe(&9.0); // worse: must not loosen
        assert!(b.dominated(&6.0));
        b.observe(&2.0);
        assert!(b.dominated(&3.0));
        assert!(!b.dominated(&2.0));
    }

    #[test]
    fn seeding_encoded_bits_matches_observing_the_loss() {
        use selc::OrderedLoss as _;
        let b: SharedBound<f64> = SharedBound::new();
        b.observe_bits(5.0f64.prune_bits().unwrap());
        assert!(b.is_set());
        assert!(b.dominated(&6.0));
        assert!(!b.dominated(&5.0), "seeding keeps strict domination");
        b.observe_bits(u64::MAX); // the UNSET sentinel: a no-op seed
        assert!(b.dominated(&6.0));
    }

    #[test]
    fn unencodable_losses_disable_pruning() {
        let b: SharedBound<(f64, f64)> = SharedBound::new();
        b.observe(&(1.0, 1.0));
        assert!(!b.is_set());
        assert!(!b.dominated(&(100.0, 100.0)));
    }

    #[test]
    fn bound_is_shareable_across_threads() {
        let b: SharedBound<f64> = SharedBound::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let b = &b;
                s.spawn(move || b.observe(&(10.0 - f64::from(i))));
            }
        });
        assert!(b.dominated(&8.0));
        assert!(!b.dominated(&7.0));
    }
}

/// Exhaustive small-schedule verification under the `selc_check` model
/// checker (`RUSTFLAGS="--cfg selc_model" cargo test -p selc-engine`).
#[cfg(all(test, selc_model))]
mod model_tests {
    use super::*;
    use selc_check::model::{check, spawn, Options};
    use std::sync::Arc;

    /// Racing publishers and a racing reader: on every interleaving the
    /// bound tightens monotonically, ends at the minimum of everything
    /// published, and domination stays *strict* (an equal loss is never
    /// dominated, preserving the deterministic tie-break).
    #[test]
    fn model_bound_is_monotone_and_strictly_dominating() {
        check("bound-monotone", Options::default(), || {
            let b: Arc<SharedBound<f64>> = Arc::new(SharedBound::new());
            let p1 = {
                let b = Arc::clone(&b);
                spawn(move || {
                    b.observe(&5.0);
                    b.observe(&3.0);
                })
            };
            let p2 = {
                let b = Arc::clone(&b);
                spawn(move || b.observe(&4.0))
            };
            let reader = {
                let b = Arc::clone(&b);
                spawn(move || {
                    let first = b.bits.load(Ordering::Relaxed); // ordering: model fixture probe
                    let second = b.bits.load(Ordering::Relaxed); // ordering: model fixture probe
                    assert!(second <= first, "the bound only ever tightens");
                })
            };
            p1.join();
            p2.join();
            reader.join();
            let best = 3.0f64.prune_bits().expect("finite losses encode");
            assert_eq!(
                b.bits.load(Ordering::Relaxed),
                best,
                "final bound is the min of all published"
            ); // ordering: post-join
            assert!(b.dominated(&3.5));
            assert!(
                !b.dominated(&3.0),
                "ties are never dominated — strictness survives every schedule"
            );
        });
    }
}
