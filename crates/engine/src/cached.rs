//! Cache-through evaluation: a shared transposition table threaded
//! through candidate search, the way [`SharedBound`] threads the
//! branch-and-bound bound.
//!
//! [`CachedEval`] wraps any [`CandidateEval`] with a
//! [`selc_cache::ShardedCache`] keyed by a caller-supplied candidate
//! key: a hit answers the candidate without evaluating it, a miss
//! evaluates and stores. Because the underlying evaluation is pure (the
//! replay argument of `DESIGN.md`), a cached loss is bit-identical to
//! the recomputed one, so the engine's deterministic `(loss, index)`
//! reduction — and therefore the winner — is unchanged by caching,
//! eviction, shard count, or which worker happened to fill an entry.
//! What changes is *work*: candidates another worker (or an earlier
//! search reusing the same handle) already evaluated stop paying for
//! re-evaluation.
//!
//! Two soundness notes:
//!
//! * the key function must be injective up to evaluation: candidates
//!   mapping to one key must have bit-identical losses (canonicalised
//!   game states, quantised rates, plain indices — all fine);
//! * pruned candidates (`eval` returning `None`) are **not** cached:
//!   `None` is "dominated right now", a fact about the current shared
//!   bound, not a loss.

use crate::bound::SharedBound;
use crate::engine::{CandidateEval, Engine, Outcome};
use crate::replay::SelEval;
use selc::{OrderedLoss, ReplaySpace};
use selc_cache::{CacheStats, ShardedCache};
use std::hash::Hash;

/// A [`CandidateEval`] adapter that consults a shared cache before
/// delegating to the inner evaluator. Stats reported through
/// [`CandidateEval::cache_stats`] are the *delta* against the handle's
/// counters at wrap time (plus whatever the inner evaluator reports), so
/// a long-lived cache reused across many searches attributes each
/// search only its own traffic.
pub struct CachedEval<'c, K, L, E, F> {
    inner: E,
    cache: &'c ShardedCache<K, L>,
    key: F,
    base: CacheStats,
}

impl<'c, K, L, E, F> CachedEval<'c, K, L, E, F>
where
    K: Eq + Hash + Send + 'static,
    L: OrderedLoss,
{
    /// Wraps `inner`, keying candidate `i` by `key(i)` in `cache`.
    pub fn new(inner: E, cache: &'c ShardedCache<K, L>, key: F) -> CachedEval<'c, K, L, E, F> {
        let base = cache.stats();
        CachedEval { inner, cache, key, base }
    }
}

impl<K, L, E, F> CandidateEval<L> for CachedEval<'_, K, L, E, F>
where
    K: Eq + Hash + Send + 'static,
    L: OrderedLoss,
    E: CandidateEval<L>,
    F: Fn(usize) -> K + Send + Sync,
{
    fn eval(&self, index: usize, bound: &SharedBound<L>) -> Option<L> {
        let k = (self.key)(index);
        if let Some(loss) = self.cache.lookup(&k) {
            return Some(loss);
        }
        let loss = self.inner.eval(index, bound)?;
        self.cache.store(k, loss.clone());
        Some(loss)
    }

    fn lower_bound(&self, index: usize) -> Option<L> {
        self.inner.lower_bound(index)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats().since(&self.base).merged(&self.inner.cache_stats())
    }
}

/// [`crate::search_programs`] through a shared cache: argmin by recorded
/// loss over `factory(0..space)`, with candidate `i`'s loss cached under
/// `key(i)` — repeated searches against the same handle (and concurrent
/// workers within one search whose keys collide meaningfully) skip the
/// replay entirely. One extra replay of the winner recovers its value.
/// Returns `None` for an empty space.
pub fn search_programs_cached<L, A, R, G, K, F>(
    engine: &G,
    space: usize,
    factory: R,
    cache: &ShardedCache<K, L>,
    key: F,
) -> Option<(Outcome<L>, A)>
where
    L: OrderedLoss,
    A: Clone + 'static,
    R: ReplaySpace<L, A>,
    G: Engine,
    K: Eq + Hash + Send + 'static,
    F: Fn(usize) -> K + Send + Sync,
{
    let inner = SelEval::new(factory);
    let cached = CachedEval::new(&inner, cache, key);
    let outcome = engine.search(space, &cached)?;
    let (_, value) = inner
        .rebuild(outcome.index)
        .run()
        .expect("replayed winner reached the top level with an unhandled operation");
    Some((outcome, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{minimize, FnEval, ParallelEngine, SequentialEngine};
    use selc::loss;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A counting evaluator: how many candidates were *really* computed.
    struct Counting<'a> {
        losses: Vec<f64>,
        computed: &'a AtomicU64,
    }

    impl CandidateEval<f64> for Counting<'_> {
        fn eval(&self, i: usize, _b: &SharedBound<f64>) -> Option<f64> {
            self.computed.fetch_add(1, Ordering::Relaxed);
            Some(self.losses[i])
        }
    }

    #[test]
    fn warm_cache_answers_a_repeat_search_without_evaluation() {
        let losses: Vec<f64> = (0..30).map(|i| f64::from((i * 13 % 7) as u32)).collect();
        let cache: ShardedCache<usize, f64> = ShardedCache::unbounded(4);
        let computed = AtomicU64::new(0);
        let eval = Counting { losses: losses.clone(), computed: &computed };

        let cold = CachedEval::new(&eval, &cache, |i| i);
        let first = SequentialEngine::exhaustive().search(losses.len(), &cold).unwrap();
        assert_eq!(computed.load(Ordering::Relaxed), 30);
        assert_eq!(first.stats.cache.misses, 30);
        assert_eq!(first.stats.cache.hits, 0);

        let warm = CachedEval::new(&eval, &cache, |i| i);
        let second = ParallelEngine::with_threads(3).search(losses.len(), &warm).unwrap();
        assert_eq!(computed.load(Ordering::Relaxed), 30, "no candidate recomputed");
        assert_eq!(second.stats.cache.hits, 30, "delta stats, not lifetime stats");
        assert_eq!((second.index, second.loss), (first.index, first.loss));

        let oracle =
            minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        assert_eq!((first.index, first.loss), (oracle.index, oracle.loss));
    }

    #[test]
    fn eviction_costs_recomputation_but_not_the_winner() {
        let losses: Vec<f64> = (0..40).map(|i| f64::from((i * 31 % 11) as u32) + 1.0).collect();
        let oracle =
            minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        // Capacity 4 over 40 candidates: almost everything is evicted.
        let cache: ShardedCache<usize, f64> = ShardedCache::clock_lru(2, 4);
        for _ in 0..3 {
            let eval = FnEval(|i: usize| losses[i]);
            let cached = CachedEval::new(&eval, &cache, |i| i);
            let out = ParallelEngine { threads: 2, chunk: 1, prune: false }
                .search(losses.len(), &cached)
                .unwrap();
            assert_eq!((out.index, out.loss), (oracle.index, oracle.loss));
        }
        assert!(cache.stats().evictions > 0, "tiny cap must evict: {:?}", cache.stats());
    }

    #[test]
    fn cached_program_search_matches_uncached() {
        let cs: Vec<f64> = vec![4.0, 2.5, 7.0, 2.5, 9.0];
        let cs2 = cs.clone();
        let (plain, plain_val) =
            crate::replay::search_programs(&SequentialEngine::exhaustive(), 5, move |i: usize| {
                loss(cs[i]).map(move |_| i * 10)
            })
            .unwrap();
        let cache: ShardedCache<usize, f64> = ShardedCache::unbounded(3);
        for round in 0..2 {
            let cs = cs2.clone();
            let (out, val) = search_programs_cached(
                &ParallelEngine::with_threads(4),
                5,
                move |i: usize| loss(cs[i]).map(move |_| i * 10),
                &cache,
                |i| i,
            )
            .unwrap();
            assert_eq!((out.index, out.loss, val), (plain.index, plain.loss, plain_val));
            if round == 1 {
                assert_eq!(out.stats.cache.hits, 5, "second search fully cached");
            }
        }
    }

    #[test]
    fn pruned_candidates_are_not_cached() {
        struct PruneAll;
        impl CandidateEval<f64> for PruneAll {
            fn eval(&self, i: usize, _b: &SharedBound<f64>) -> Option<f64> {
                if i == 0 {
                    Some(1.0)
                } else {
                    None
                }
            }
        }
        let cache: ShardedCache<usize, f64> = ShardedCache::unbounded(2);
        let cached = CachedEval::new(PruneAll, &cache, |i| i);
        let out = SequentialEngine::pruning().search(8, &cached).unwrap();
        assert_eq!(out.index, 0);
        assert_eq!(cache.len(), 1, "only the evaluated candidate is stored");
    }
}
