//! The engines: candidate-space search with deterministic reduction.
//!
//! An [`Engine`] evaluates every candidate in a finite space `0..space`
//! through a [`CandidateEval`] and returns the argmin under the total
//! order [`OrderedLoss::cmp_loss`], ties broken towards the smallest
//! index. [`SequentialEngine`] is the single-threaded reference;
//! [`ParallelEngine`] distributes chunks of the space over a fixed pool
//! of `std::thread` workers and merges per-worker bests by
//! `(loss, index)` — a commutative, associative, *total* reduction, so
//! the winner is bit-identical to the sequential scan regardless of
//! thread interleaving. Both share the branch-and-bound machinery of
//! [`SharedBound`].

use crate::bound::SharedBound;
use crate::cancel::CancelToken;
use crate::queue::WorkQueue;
use crate::threads::configured_threads;
use selc::OrderedLoss;
use selc_cache::{CacheStats, SummaryStats};
use selc_obs::{trace, SpanLabel};
use std::sync::LazyLock;

/// Span labels for the engine hot paths: a queue claim (the wait for
/// work), one flat candidate evaluation, one claimed subtree descent.
/// All three are inert one-branch checks unless `SELC_TRACE` is set.
pub(crate) static CLAIM_SPAN: SpanLabel = SpanLabel::new("engine.claim");
static EVAL_SPAN: SpanLabel = SpanLabel::new("engine.eval");

/// Process-global engine counters, folded in **once per search** from
/// the already-merged [`SearchStats`] rather than incremented per
/// candidate — the per-event cost lands on code that runs a handful of
/// times per request, and the per-candidate loop stays exactly as the
/// bench baselines measured it. This is also what makes the counters
/// deterministic where the underlying stat is: `engine.evaluated`
/// under an exhaustive search is the same number whatever
/// `SELC_THREADS` says, which the metrics differential suite pins.
struct EngineMetrics {
    searches: selc_obs::Counter,
    evaluated: selc_obs::Counter,
    pruned: selc_obs::Counter,
    cancelled: selc_obs::Counter,
    summary_exact_installs: selc_obs::Counter,
    summary_bound_installs: selc_obs::Counter,
}

static ENGINE_METRICS: LazyLock<EngineMetrics> = LazyLock::new(|| EngineMetrics {
    searches: selc_obs::metrics::counter("engine.searches"),
    evaluated: selc_obs::metrics::counter("engine.evaluated"),
    pruned: selc_obs::metrics::counter("engine.pruned"),
    cancelled: selc_obs::metrics::counter("engine.cancelled"),
    summary_exact_installs: selc_obs::metrics::counter("engine.summary_exact_installs"),
    summary_bound_installs: selc_obs::metrics::counter("engine.summary_bound_installs"),
});

/// Folds one finished search into the global counters; no-op when
/// metrics are disabled.
pub(crate) fn record_search_metrics(stats: &SearchStats, aborted: bool) {
    if !selc_obs::metrics_enabled() {
        return;
    }
    let m = &*ENGINE_METRICS;
    m.searches.inc();
    m.evaluated.add(stats.evaluated);
    m.pruned.add(stats.pruned);
    if aborted {
        m.cancelled.inc();
    }
    m.summary_exact_installs.add(stats.summary.exact_installs);
    m.summary_bound_installs.add(stats.summary.bound_installs);
}

/// How an engine asks for the loss of one candidate.
///
/// Implementations are shared by reference across worker threads, so all
/// interior state must be thread-safe (atomics, locks, or nothing).
pub trait CandidateEval<L: OrderedLoss>: Send + Sync {
    /// Evaluates candidate `index` to its loss.
    ///
    /// The evaluator may consult `bound` *during* evaluation and return
    /// `None` to abandon the candidate early — but only under the pruning
    /// soundness condition (see [`crate::bound`]): `None` is a claim that
    /// the candidate's final loss is **strictly** worse than a loss some
    /// other candidate already achieved. Evaluators that cannot prove
    /// this must always return `Some`.
    fn eval(&self, index: usize, bound: &SharedBound<L>) -> Option<L>;

    /// A cheap lower bound on candidate `index`'s loss, if one is
    /// available before evaluating; engines skip candidates whose lower
    /// bound the shared bound strictly dominates.
    fn lower_bound(&self, _index: usize) -> Option<L> {
        None
    }

    /// Cache counters accumulated by the evaluator — probe memoisation
    /// (see [`selc::MemoChoice::stats`]) and/or a shared transposition
    /// table (see [`crate::cached`]); merged into [`SearchStats::cache`]
    /// after the search.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// The best *achieved* loss already known for this space, in the
    /// [`OrderedLoss::prune_bits`] encoding — e.g. the best cached value
    /// from a previous search over the same immutable program. Pruning
    /// engines seed their [`SharedBound`] with it before the first
    /// candidate runs, so warm repeats prune from the first batch.
    /// Soundness: only report losses some candidate of this space
    /// actually attains, never a lower bound.
    fn seed_bits(&self) -> Option<u64> {
        None
    }
}

/// References delegate, so adapters (e.g. [`crate::cached::CachedEval`])
/// can borrow an evaluator they do not own.
impl<L: OrderedLoss, E: CandidateEval<L>> CandidateEval<L> for &E {
    fn eval(&self, index: usize, bound: &SharedBound<L>) -> Option<L> {
        (**self).eval(index, bound)
    }

    fn lower_bound(&self, index: usize) -> Option<L> {
        (**self).lower_bound(index)
    }

    fn cache_stats(&self) -> CacheStats {
        (**self).cache_stats()
    }

    fn seed_bits(&self) -> Option<u64> {
        (**self).seed_bits()
    }
}

/// A plain-function evaluator: no pruning, no telemetry.
pub struct FnEval<F>(pub F);

impl<L, F> CandidateEval<L> for FnEval<F>
where
    L: OrderedLoss,
    F: Fn(usize) -> L + Send + Sync,
{
    fn eval(&self, index: usize, _bound: &SharedBound<L>) -> Option<L> {
        Some((self.0)(index))
    }
}

/// Search telemetry: what the engine actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Candidates evaluated to completion.
    pub evaluated: u64,
    /// Candidates skipped (dominated lower bound) or abandoned mid-eval.
    pub pruned: u64,
    /// Workers the search ran with (1 for the sequential engine).
    pub threads: usize,
    /// Cache counters reported by the evaluator: memoised probes and/or
    /// shared transposition-table traffic during this search.
    pub cache: CacheStats,
    /// Subtree-summary traffic (tree searches only; all-zero for the
    /// flat engines): interior-node probes and installs, counted by the
    /// engine itself so warm-path savings are visible separately from
    /// the leaf cache counters.
    pub summary: SummaryStats,
}

/// The result of a search: the winning candidate, its loss, and stats.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome<L> {
    /// Index of the winner in `0..space`.
    pub index: usize,
    /// The winner's loss.
    pub loss: L,
    /// Telemetry for this search.
    pub stats: SearchStats,
}

/// What a cancellable search came back with: either the completed argmin
/// or whatever was best when the [`CancelToken`] fired.
#[derive(Clone, Debug, PartialEq)]
pub enum SearchResult<L> {
    /// The space was fully decided (modulo sound pruning): the outcome
    /// is the deterministic argmin, `None` only for an empty space.
    Complete(Option<Outcome<L>>),
    /// The token fired mid-search. The outcome is the best candidate
    /// *seen so far* — a valid achieved loss, but not necessarily the
    /// argmin — or `None` when nothing had scored yet. Stats count only
    /// the work actually done.
    Cancelled(Option<Outcome<L>>),
}

impl<L> SearchResult<L> {
    /// Whether the token fired before the search decided the space.
    #[must_use]
    pub fn was_cancelled(&self) -> bool {
        matches!(self, SearchResult::Cancelled(_))
    }

    /// The outcome either way: the argmin when complete, the partial
    /// best when cancelled.
    #[must_use]
    pub fn into_outcome(self) -> Option<Outcome<L>> {
        match self {
            SearchResult::Complete(o) | SearchResult::Cancelled(o) => o,
        }
    }
}

/// A strategy for searching a finite candidate space. `search` returns
/// `None` only for an empty space.
pub trait Engine {
    /// Engine name, for bench labels and diagnostics.
    fn name(&self) -> &'static str;

    /// Argmin over `0..space` under `eval`, deterministic tie-breaking
    /// towards the smallest index, aborting (with the best seen so far)
    /// as soon as `cancel` fires — checked per candidate, alongside the
    /// shared bound, so deadline and disconnect aborts take effect
    /// within one evaluation.
    fn search_with<L: OrderedLoss, E: CandidateEval<L> + ?Sized>(
        &self,
        space: usize,
        eval: &E,
        cancel: &CancelToken,
    ) -> SearchResult<L>;

    /// Argmin over `0..space` under `eval`, deterministic tie-breaking
    /// towards the smallest index. Runs under a token that can never
    /// fire, so the result is always complete.
    fn search<L: OrderedLoss, E: CandidateEval<L> + ?Sized>(
        &self,
        space: usize,
        eval: &E,
    ) -> Option<Outcome<L>> {
        self.search_with(space, eval, &CancelToken::never()).into_outcome()
    }
}

/// One worker's contribution: local best, (evaluated, pruned) counts,
/// and whether it ran to completion (`false` when the cancel token
/// stopped it mid-scan).
type WorkerResult<L> = (Option<(L, usize)>, u64, u64, bool);

/// Lexicographic `(loss, index)` merge — the deterministic reduction.
/// One definition for every engine (the flat scans here, the tree walk
/// in [`crate::tree`]): the bit-identical-winners contract depends on
/// all of them folding with exactly this comparison.
pub(crate) fn better<L: OrderedLoss>(a: &(L, usize), b: &(L, usize)) -> bool {
    match a.0.cmp_loss(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// One scanner's running state: the local best plus evaluated/pruned
/// tallies, accumulated across every range the scanner processes.
#[derive(Debug)]
struct ScanState<L> {
    best: Option<(L, usize)>,
    evaluated: u64,
    pruned: u64,
}

impl<L> ScanState<L> {
    fn new() -> ScanState<L> {
        ScanState { best: None, evaluated: 0, pruned: 0 }
    }
}

/// Evaluates `indices`, maintaining a local best and the shared bound.
/// Returns `false` when `cancel` fired mid-range (the remaining indices
/// were not touched), `true` when the whole range was processed.
fn scan<L, E>(
    eval: &E,
    indices: std::ops::Range<usize>,
    bound: &SharedBound<L>,
    prune: bool,
    cancel: &CancelToken,
    state: &mut ScanState<L>,
) -> bool
where
    L: OrderedLoss,
    E: CandidateEval<L> + ?Sized,
{
    for i in indices {
        if cancel.is_cancelled() {
            return false;
        }
        if prune {
            if let Some(lb) = eval.lower_bound(i) {
                if bound.dominated(&lb) {
                    state.pruned += 1;
                    continue;
                }
            }
        }
        let scored = {
            let _span = trace::span(&EVAL_SPAN, i as u64);
            eval.eval(i, bound)
        };
        match scored {
            None => state.pruned += 1,
            Some(l) => {
                state.evaluated += 1;
                if prune {
                    bound.observe(&l);
                }
                let candidate = (l, i);
                if state.best.as_ref().is_none_or(|b| better(&candidate, b)) {
                    state.best = Some(candidate);
                }
            }
        }
    }
    true
}

/// The single-threaded reference engine (and differential-test oracle).
#[derive(Clone, Copy, Debug)]
pub struct SequentialEngine {
    /// Enable branch-and-bound pruning against a (thread-local) bound.
    pub prune: bool,
}

impl SequentialEngine {
    /// An exhaustive sequential engine (no pruning).
    pub fn exhaustive() -> SequentialEngine {
        SequentialEngine { prune: false }
    }

    /// A sequential engine with branch-and-bound pruning.
    pub fn pruning() -> SequentialEngine {
        SequentialEngine { prune: true }
    }
}

impl Engine for SequentialEngine {
    fn name(&self) -> &'static str {
        if self.prune {
            "sequential+prune"
        } else {
            "sequential"
        }
    }

    fn search_with<L: OrderedLoss, E: CandidateEval<L> + ?Sized>(
        &self,
        space: usize,
        eval: &E,
        cancel: &CancelToken,
    ) -> SearchResult<L> {
        let bound = SharedBound::new();
        if self.prune {
            if let Some(bits) = eval.seed_bits() {
                bound.observe_bits(bits);
            }
        }
        let mut state = ScanState::new();
        let completed = scan(eval, 0..space, &bound, self.prune, cancel, &mut state);
        let stats = SearchStats {
            evaluated: state.evaluated,
            pruned: state.pruned,
            threads: 1,
            cache: eval.cache_stats(),
            summary: SummaryStats::default(),
        };
        record_search_metrics(&stats, !completed);
        let outcome = state.best.map(|(loss, index)| Outcome { index, loss, stats });
        if completed {
            SearchResult::Complete(outcome)
        } else {
            SearchResult::Cancelled(outcome)
        }
    }
}

/// The parallel engine: a fixed-size `std::thread` worker pool fed by a
/// chunked work queue (an atomic cursor over `0..space`), with the shared
/// branch-and-bound bound and the deterministic `(loss, index)` merge.
#[derive(Clone, Copy, Debug)]
pub struct ParallelEngine {
    /// Worker count; `0` means [`configured_threads`] (`SELC_THREADS`).
    pub threads: usize,
    /// Indices handed to a worker per queue pop; `0` picks a chunk that
    /// gives each worker ~4 pops over the space.
    pub chunk: usize,
    /// Enable branch-and-bound pruning via the shared bound.
    pub prune: bool,
}

impl Default for ParallelEngine {
    fn default() -> Self {
        ParallelEngine { threads: 0, chunk: 0, prune: true }
    }
}

impl ParallelEngine {
    /// `SELC_THREADS` workers, auto chunking, pruning on.
    pub fn auto() -> ParallelEngine {
        ParallelEngine::default()
    }

    /// A pool of exactly `threads` workers, auto chunking, pruning on.
    pub fn with_threads(threads: usize) -> ParallelEngine {
        ParallelEngine { threads, ..ParallelEngine::default() }
    }

    /// Same pool, pruning disabled (pure exhaustive fan-out).
    pub fn without_pruning(mut self) -> ParallelEngine {
        self.prune = false;
        self
    }

    fn effective_threads(&self, space: usize) -> usize {
        let t = if self.threads == 0 { configured_threads() } else { self.threads };
        t.max(1).min(space.max(1))
    }

    fn effective_chunk(&self, space: usize, threads: usize) -> usize {
        if self.chunk != 0 {
            return self.chunk;
        }
        (space / (threads * 4)).max(1)
    }
}

impl Engine for ParallelEngine {
    fn name(&self) -> &'static str {
        if self.prune {
            "parallel+prune"
        } else {
            "parallel"
        }
    }

    fn search_with<L: OrderedLoss, E: CandidateEval<L> + ?Sized>(
        &self,
        space: usize,
        eval: &E,
        cancel: &CancelToken,
    ) -> SearchResult<L> {
        if space == 0 {
            return SearchResult::Complete(None);
        }
        let threads = self.effective_threads(space);
        if threads == 1 {
            // Same scan, no pool: keeps the 1-worker bench rows honest
            // about not paying spawn overhead twice.
            return SequentialEngine { prune: self.prune }.search_with(space, eval, cancel);
        }
        let chunk = self.effective_chunk(space, threads);
        let queue = WorkQueue::new(space);
        let bound = SharedBound::new();
        let prune = self.prune;
        if prune {
            if let Some(bits) = eval.seed_bits() {
                bound.observe_bits(bits);
            }
        }

        let mut results: Vec<WorkerResult<L>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let queue = &queue;
                    let bound = &bound;
                    s.spawn(move || {
                        let mut state = ScanState::new();
                        let mut completed = true;
                        // The claim itself honours the token, so a worker
                        // stops within one chunk of cancellation instead
                        // of spinning the queue to exhaustion.
                        loop {
                            let claimed = {
                                let _span = trace::span(&CLAIM_SPAN, chunk as u64);
                                queue.claim_unless(chunk, cancel)
                            };
                            let Some((start, end)) = claimed else { break };
                            if !scan(eval, start..end, bound, prune, cancel, &mut state) {
                                completed = false;
                                break;
                            }
                        }
                        (state.best, state.evaluated, state.pruned, completed)
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("engine worker panicked"));
            }
        });

        let mut best: Option<(L, usize)> = None;
        let (mut evaluated, mut pruned) = (0, 0);
        let mut aborted = false;
        for (local, e, p, completed) in results {
            evaluated += e;
            pruned += p;
            aborted |= !completed;
            if let Some(candidate) = local {
                if best.as_ref().is_none_or(|b| better(&candidate, b)) {
                    best = Some(candidate);
                }
            }
        }
        // A worker that saw the token mid-scan proves candidates were
        // skipped; claims refused at the loop head leave the queue
        // cursor short of the space, which the same check catches.
        aborted |= cancel.is_cancelled() && evaluated + pruned < space as u64;
        let stats = SearchStats {
            evaluated,
            pruned,
            threads,
            cache: eval.cache_stats(),
            summary: SummaryStats::default(),
        };
        record_search_metrics(&stats, aborted);
        let outcome = best.map(|(loss, index)| Outcome { index, loss, stats });
        if aborted {
            SearchResult::Cancelled(outcome)
        } else {
            SearchResult::Complete(outcome)
        }
    }
}

/// Argmin of `f` over `0..space` — the convenience entry point.
pub fn minimize<L, F, G>(engine: &G, space: usize, f: F) -> Option<Outcome<L>>
where
    L: OrderedLoss,
    F: Fn(usize) -> L + Send + Sync,
    G: Engine,
{
    engine.search(space, &FnEval(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_space_returns_none() {
        assert!(minimize(&SequentialEngine::exhaustive(), 0, |i| i as f64).is_none());
        assert!(minimize(&ParallelEngine::with_threads(3), 0, |i| i as f64).is_none());
    }

    #[test]
    fn sequential_finds_min_and_breaks_ties_left() {
        let losses = [3.0, 1.0, 4.0, 1.0, 5.0];
        let out = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        assert_eq!(out.index, 1);
        assert_eq!(out.loss, 1.0);
        assert_eq!(out.stats.evaluated, 5);
        assert_eq!(out.stats.pruned, 0);
    }

    #[test]
    fn parallel_matches_sequential_across_pool_shapes() {
        let losses: Vec<f64> = (0..57).map(|i| f64::from((i * 37 % 19) as u8)).collect();
        let reference =
            minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        for threads in [1, 2, 3, 8] {
            for chunk in [0, 1, 5, 100] {
                for prune in [false, true] {
                    let eng = ParallelEngine { threads, chunk, prune };
                    let out = minimize(&eng, losses.len(), |i| losses[i]).unwrap();
                    assert_eq!(
                        (out.index, out.loss),
                        (reference.index, reference.loss),
                        "threads={threads} chunk={chunk} prune={prune}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_bounds_prune_but_never_change_the_winner() {
        struct Bounded;
        impl CandidateEval<f64> for Bounded {
            fn eval(&self, index: usize, _b: &SharedBound<f64>) -> Option<f64> {
                Some(f64::from(index as u32))
            }
            fn lower_bound(&self, index: usize) -> Option<f64> {
                // Exact bounds: everything after index 0 is prunable once
                // candidate 0 (loss 0) has been observed.
                Some(f64::from(index as u32))
            }
        }
        let seq = SequentialEngine::pruning().search(64, &Bounded).unwrap();
        assert_eq!((seq.index, seq.loss), (0, 0.0));
        assert!(seq.stats.pruned > 0, "stats: {:?}", seq.stats);
        let par =
            ParallelEngine { threads: 4, chunk: 4, prune: true }.search(64, &Bounded).unwrap();
        assert_eq!((par.index, par.loss), (0, 0.0));
        assert_eq!(par.stats.evaluated + par.stats.pruned, 64);
    }

    #[test]
    fn self_pruning_eval_is_counted_and_harmless() {
        struct SelfPrune;
        impl CandidateEval<f64> for SelfPrune {
            fn eval(&self, index: usize, bound: &SharedBound<f64>) -> Option<f64> {
                let loss = f64::from((index % 10) as u32) + 1.0;
                // Abandon mid-eval when strictly dominated (sound: `loss`
                // here is also its own lower bound).
                if bound.dominated(&loss) {
                    return None;
                }
                Some(loss)
            }
        }
        let out =
            ParallelEngine { threads: 3, chunk: 2, prune: true }.search(40, &SelfPrune).unwrap();
        assert_eq!(out.loss, 1.0);
        assert_eq!(out.index, 0, "earliest of the loss-1 candidates");
    }

    #[test]
    fn one_thread_pool_reports_single_worker() {
        let out = minimize(&ParallelEngine::with_threads(1), 10, |i| i as f64).unwrap();
        assert_eq!(out.stats.threads, 1);
    }

    #[test]
    fn nan_losses_lose_to_finite_ones_deterministically() {
        let losses = [f64::NAN, 2.0, f64::NAN, 1.0];
        let seq = minimize(&SequentialEngine::exhaustive(), 4, |i| losses[i]).unwrap();
        let par = minimize(&ParallelEngine::with_threads(4), 4, |i| losses[i]).unwrap();
        assert_eq!(seq.index, 3);
        assert_eq!(par.index, 3);
    }

    /// An evaluator that fires the shared token after `trip` evaluations
    /// — the in-band stand-in for a client hanging up mid-search.
    struct TripWire {
        cancel: CancelToken,
        trip: u64,
        count: std::sync::atomic::AtomicU64,
    }

    impl CandidateEval<f64> for TripWire {
        fn eval(&self, index: usize, _b: &SharedBound<f64>) -> Option<f64> {
            let n = self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n + 1 >= self.trip {
                self.cancel.cancel();
            }
            Some(f64::from(index as u32) + 1.0)
        }
    }

    #[test]
    fn cancelled_searches_return_a_partial_best_without_draining_the_space() {
        let space = 100_000;
        for threads in [1, 3] {
            let cancel = CancelToken::new();
            let eval = TripWire { cancel: cancel.clone(), trip: 5, count: Default::default() };
            let result = ParallelEngine { threads, chunk: 2, prune: false }
                .search_with(space, &eval, &cancel);
            assert!(result.was_cancelled(), "threads {threads}");
            let out = result.into_outcome().expect("five candidates scored");
            assert!(out.loss >= 1.0, "partial best is a really-achieved loss");
            assert!(
                out.stats.evaluated + out.stats.pruned < space as u64 / 2,
                "threads {threads}: workers must stop claiming, stats {:?}",
                out.stats
            );
        }
    }

    #[test]
    fn a_pre_cancelled_token_stops_the_search_before_any_evaluation() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let eval = TripWire { cancel: cancel.clone(), trip: u64::MAX, count: Default::default() };
        for result in [
            SequentialEngine::exhaustive().search_with(64, &eval, &cancel),
            ParallelEngine::with_threads(4).search_with(64, &eval, &cancel),
        ] {
            assert!(result.was_cancelled());
            assert!(result.into_outcome().is_none(), "nothing was evaluated");
        }
        assert_eq!(eval.count.load(std::sync::atomic::Ordering::Relaxed), 0);
    }

    #[test]
    fn never_tokens_leave_results_complete_and_bit_identical() {
        let losses: Vec<f64> = (0..33).map(|i| f64::from((i * 13 % 7) as u8)).collect();
        let reference =
            minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        let result = ParallelEngine::with_threads(3).search_with(
            losses.len(),
            &FnEval(|i: usize| losses[i]),
            &CancelToken::never(),
        );
        assert!(!result.was_cancelled());
        let out = result.into_outcome().unwrap();
        assert_eq!((out.index, out.loss), (reference.index, reference.loss));
    }

    #[test]
    fn expired_deadlines_cancel_flat_searches() {
        let cancel = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let result = SequentialEngine::exhaustive().search_with(
            1_000,
            &FnEval(|i: usize| i as f64),
            &cancel,
        );
        assert!(result.was_cancelled());
    }
}
