//! Worker-count configuration: the `SELC_THREADS` knob.
//!
//! Every parallel entry point in the workspace sizes its pool with
//! [`configured_threads`], so one environment variable makes runs
//! reproducible on any machine (CI pins `SELC_THREADS=2`). Unset or
//! unparsable values fall back to [`std::thread::available_parallelism`].
//! Parsing goes through the workspace's one env parser
//! ([`selc::env::env_usize`]), shared with the `SELC_CACHE_SHARDS` /
//! `SELC_CACHE_CAP` cache knobs.

/// Name of the environment variable consulted by [`configured_threads`].
pub const THREADS_ENV: &str = "SELC_THREADS";

/// Number of workers a parallel search should use when the caller did not
/// pin one: `SELC_THREADS` if set to a positive integer, else the
/// machine's available parallelism, else 1.
pub fn configured_threads() -> usize {
    selc::env::env_usize(THREADS_ENV).unwrap_or_else(hardware_threads)
}

/// The fallback default: what the OS reports, clamped to at least 1.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_default_is_positive() {
        assert!(hardware_threads() >= 1);
    }
}
