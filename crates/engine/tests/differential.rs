//! Differential + property suite: the parallel engine must return
//! bit-identical winners to the sequential fallback — and to a plain
//! first-minimum scan — on randomized losses, across pool shapes, with
//! and without pruning, including ties.

use proptest::prelude::*;
use selc::loss;
use selc_engine::{
    minimize, search_programs, CandidateEval, Engine, ParallelEngine, SequentialEngine, SharedBound,
};

/// The oracle the whole workspace uses for sequential argmin: first
/// strict minimum, ties towards the earliest candidate (the semantics of
/// `selection::argmin_by` and of every handler scan in the seed).
fn first_min(losses: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for (i, l) in losses.iter().enumerate().skip(1) {
        if *l < losses[best] {
            best = i;
        }
    }
    (best, losses[best])
}

fn pool_shapes() -> Vec<ParallelEngine> {
    let mut shapes = Vec::new();
    for threads in [1, 2, 3, 4, 8] {
        for chunk in [0, 1, 3] {
            for prune in [false, true] {
                shapes.push(ParallelEngine { threads, chunk, prune });
            }
        }
    }
    shapes
}

proptest! {
    #[test]
    fn parallel_equals_sequential_on_random_losses(
        losses in proptest::collection::vec(0.0_f64..100.0, 1..40)
    ) {
        let seq = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        prop_assert_eq!((seq.index, seq.loss), first_min(&losses));
        for eng in pool_shapes() {
            let par = minimize(&eng, losses.len(), |i| losses[i]).unwrap();
            prop_assert_eq!(par.index, seq.index);
            prop_assert_eq!(par.loss, seq.loss);
        }
    }

    #[test]
    fn tie_breaking_is_deterministic_under_parallelism(
        // Quantised losses: few distinct values over many candidates
        // force plenty of exact ties.
        raw in proptest::collection::vec(0_u32..4, 2..48)
    ) {
        let losses: Vec<f64> = raw.iter().map(|r| f64::from(*r)).collect();
        let (oracle_idx, oracle_loss) = first_min(&losses);
        for eng in pool_shapes() {
            let out = minimize(&eng, losses.len(), |i| losses[i]).unwrap();
            prop_assert_eq!(out.index, oracle_idx);
            prop_assert_eq!(out.loss, oracle_loss);
        }
    }

    #[test]
    fn replayed_sel_programs_agree_across_engines(
        losses in proptest::collection::vec(0.0_f64..50.0, 1..24)
    ) {
        // Candidate i's program records losses[i] and returns i²; both
        // engines must pick the same program and value.
        let mk_factory = |cs: Vec<f64>| move |i: usize| loss(cs[i]).map(move |_| i * i);
        let (seq, seq_val) = search_programs(
            &SequentialEngine::exhaustive(), losses.len(), mk_factory(losses.clone()),
        ).unwrap();
        let (par, par_val) = search_programs(
            &ParallelEngine { threads: 4, chunk: 1, prune: true }, losses.len(),
            mk_factory(losses.clone()),
        ).unwrap();
        prop_assert_eq!(seq.index, par.index);
        prop_assert_eq!(seq.loss, par.loss);
        prop_assert_eq!(seq_val, par_val);
        prop_assert_eq!((seq.index, seq.loss), first_min(&losses));
    }

    #[test]
    fn pruning_never_changes_the_winner_with_exact_lower_bounds(
        losses in proptest::collection::vec(0.0_f64..10.0, 1..40)
    ) {
        struct Exact(Vec<f64>);
        impl CandidateEval<f64> for Exact {
            fn eval(&self, i: usize, _b: &SharedBound<f64>) -> Option<f64> {
                Some(self.0[i])
            }
            fn lower_bound(&self, i: usize) -> Option<f64> {
                Some(self.0[i])
            }
        }
        let eval = Exact(losses.clone());
        let oracle = first_min(&losses);
        for eng in pool_shapes() {
            let out = eng.search(losses.len(), &eval).unwrap();
            prop_assert_eq!((out.index, out.loss), oracle);
            prop_assert_eq!(out.stats.evaluated + out.stats.pruned, losses.len() as u64);
        }
        let seq = SequentialEngine::pruning().search(losses.len(), &eval).unwrap();
        prop_assert_eq!((seq.index, seq.loss), oracle);
    }

    #[test]
    fn self_pruning_evaluators_stay_sound(
        losses in proptest::collection::vec(0.0_f64..10.0, 1..40)
    ) {
        // An evaluator that abandons candidates mid-eval when the shared
        // bound strictly dominates them (monotone-partial-sum style).
        struct SelfPrune(Vec<f64>);
        impl CandidateEval<f64> for SelfPrune {
            fn eval(&self, i: usize, bound: &SharedBound<f64>) -> Option<f64> {
                let l = self.0[i];
                if bound.dominated(&l) {
                    return None;
                }
                Some(l)
            }
        }
        let eval = SelfPrune(losses.clone());
        let oracle = first_min(&losses);
        for eng in pool_shapes() {
            let out = eng.search(losses.len(), &eval).unwrap();
            prop_assert_eq!((out.index, out.loss), oracle, "engine {}", eng.name());
        }
    }
}

#[test]
fn repeated_parallel_runs_are_reproducible() {
    // Many candidates, tiny chunks, maximal interleaving churn: the
    // winner must not wobble across repetitions.
    let losses: Vec<f64> = (0..200).map(|i| f64::from((i * 7919 % 101) as u16)).collect();
    let eng = ParallelEngine { threads: 8, chunk: 1, prune: true };
    let first = minimize(&eng, losses.len(), |i| losses[i]).unwrap();
    for _ in 0..20 {
        let again = minimize(&eng, losses.len(), |i| losses[i]).unwrap();
        assert_eq!((again.index, again.loss), (first.index, first.loss));
    }
}
