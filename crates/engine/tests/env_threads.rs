//! The `SELC_THREADS` knob, tested in its own process so the env
//! mutation cannot race other tests.

use selc_engine::{configured_threads, minimize, ParallelEngine, THREADS_ENV};

#[test]
fn selc_threads_env_sizes_the_pool() {
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(configured_threads(), 3);
    let out = minimize(&ParallelEngine::auto(), 100, |i| f64::from((i % 7) as u32)).unwrap();
    assert_eq!(out.stats.threads, 3);
    assert_eq!(out.index, 0);

    // Garbage falls back to the hardware default (positive, and the
    // search still works).
    std::env::set_var(THREADS_ENV, "not-a-number");
    assert!(configured_threads() >= 1);
    std::env::set_var(THREADS_ENV, "0");
    assert!(configured_threads() >= 1, "zero is rejected, not honoured");

    std::env::remove_var(THREADS_ENV);
    assert!(configured_threads() >= 1);
}
