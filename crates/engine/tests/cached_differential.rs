//! Differential + property suite for cache-through search: cached
//! parallel search must return **bit-identical winners** to the uncached
//! sequential engine — across pool shapes, shard counts, warm and cold
//! caches, epoch bumps, key collapsing, and under capacities tiny enough
//! to force heavy eviction. CI runs this file with `SELC_THREADS=2
//! SELC_CACHE_CAP=8`, so the `from_env` rows exercise real thread
//! interleaving against a really-evicting bounded cache.

use proptest::prelude::*;
use selc::loss;
use selc_cache::ShardedCache;
use selc_engine::{
    minimize, search_programs, search_programs_cached, CachedEval, Engine, FnEval, ParallelEngine,
    SequentialEngine,
};

/// The workspace's sequential-argmin oracle: first strict minimum.
fn first_min(losses: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for (i, l) in losses.iter().enumerate().skip(1) {
        if *l < losses[best] {
            best = i;
        }
    }
    (best, losses[best])
}

fn engines() -> Vec<ParallelEngine> {
    vec![
        ParallelEngine { threads: 1, chunk: 0, prune: true },
        ParallelEngine { threads: 2, chunk: 1, prune: false },
        ParallelEngine { threads: 4, chunk: 1, prune: true },
        ParallelEngine { threads: 8, chunk: 3, prune: true },
    ]
}

/// Every cache shape a search might run against: unbounded across shard
/// counts, capacities small enough to evict almost everything, and the
/// environment-configured cache (bounded to 8 entries in CI).
fn cache_shapes() -> Vec<ShardedCache<usize, f64>> {
    vec![
        ShardedCache::unbounded(1),
        ShardedCache::unbounded(3),
        ShardedCache::unbounded(16),
        ShardedCache::clock_lru(1, 2),
        ShardedCache::clock_lru(4, 8),
        ShardedCache::from_env(),
    ]
}

proptest! {
    #[test]
    fn cached_search_equals_uncached_cold_and_warm(
        losses in proptest::collection::vec(0.0_f64..100.0, 1..40)
    ) {
        let oracle = first_min(&losses);
        let seq = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        prop_assert_eq!((seq.index, seq.loss), oracle);
        for cache in cache_shapes() {
            // Two rounds against the same handle: cold fills, warm hits
            // (or re-fills, under eviction) — the winner must not move.
            for round in 0..2 {
                for eng in engines() {
                    let eval = CachedEval::new(FnEval(|i: usize| losses[i]), &cache, |i| i);
                    let out = eng.search(losses.len(), &eval).unwrap();
                    prop_assert_eq!(
                        (out.index, out.loss), oracle,
                        "round {} engine {} shards {}", round, eng.name(), cache.shard_count()
                    );
                    prop_assert_eq!(
                        out.stats.evaluated + out.stats.pruned,
                        losses.len() as u64
                    );
                }
            }
        }
    }

    #[test]
    fn ties_break_identically_under_caching(
        // Quantised losses: few distinct values over many candidates
        // force plenty of exact ties.
        raw in proptest::collection::vec(0_u32..4, 2..48)
    ) {
        let losses: Vec<f64> = raw.iter().map(|r| f64::from(*r)).collect();
        let oracle = first_min(&losses);
        for cache in cache_shapes() {
            for eng in engines() {
                let eval = CachedEval::new(FnEval(|i: usize| losses[i]), &cache, |i| i);
                let out = eng.search(losses.len(), &eval).unwrap();
                prop_assert_eq!((out.index, out.loss), oracle, "engine {}", eng.name());
            }
        }
    }

    #[test]
    fn collapsing_keys_preserve_the_winner(
        raw in proptest::collection::vec(0_u32..6, 1..40)
    ) {
        // Key candidates by their *loss class*, not their index: indices
        // sharing a class share one cache entry, so most lookups after
        // the first per class are hits — legal because equal classes
        // mean bit-identical losses, and the winner must still be the
        // earliest index of the smallest class.
        let losses: Vec<f64> = raw.iter().map(|r| f64::from(*r)).collect();
        let oracle = first_min(&losses);
        let cache: ShardedCache<u32, f64> = ShardedCache::unbounded(4);
        for eng in engines() {
            let eval = CachedEval::new(FnEval(|i: usize| losses[i]), &cache, |i| raw[i]);
            let out = eng.search(losses.len(), &eval).unwrap();
            prop_assert_eq!((out.index, out.loss), oracle, "engine {}", eng.name());
        }
        let distinct = {
            let mut v = raw.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        prop_assert_eq!(cache.len(), distinct, "one entry per loss class");
    }

    #[test]
    fn cached_program_replay_matches_plain_replay(
        losses in proptest::collection::vec(0.0_f64..50.0, 1..24)
    ) {
        let mk_factory = |cs: Vec<f64>| move |i: usize| loss(cs[i]).map(move |_| i * i);
        let (plain, plain_val) = search_programs(
            &SequentialEngine::exhaustive(), losses.len(), mk_factory(losses.clone()),
        ).unwrap();
        let cache: ShardedCache<usize, f64> = ShardedCache::from_env();
        for eng in engines() {
            let (out, val) = search_programs_cached(
                &eng, losses.len(), mk_factory(losses.clone()), &cache, |i| i,
            ).unwrap();
            prop_assert_eq!(out.index, plain.index);
            prop_assert_eq!(out.loss, plain.loss);
            prop_assert_eq!(val, plain_val);
        }
    }

    #[test]
    fn epoch_bumps_never_change_winners(
        losses in proptest::collection::vec(0.0_f64..10.0, 1..30)
    ) {
        let oracle = first_min(&losses);
        let cache: ShardedCache<usize, f64> = ShardedCache::unbounded(2);
        for (round, eng) in engines().into_iter().enumerate() {
            if round % 2 == 1 {
                cache.advance_epoch();
            }
            let eval = CachedEval::new(FnEval(|i: usize| losses[i]), &cache, |i| i);
            let out = eng.search(losses.len(), &eval).unwrap();
            prop_assert_eq!((out.index, out.loss), oracle, "round {}", round);
        }
    }
}

#[test]
fn warm_cache_repeat_runs_are_reproducible_under_churn() {
    // Many candidates, tiny chunks, a shared warm cache: repeated
    // parallel searches must neither wobble nor miss.
    let losses: Vec<f64> = (0..200).map(|i| f64::from((i * 7919 % 101) as u16)).collect();
    let cache: ShardedCache<usize, f64> = ShardedCache::unbounded(8);
    let eng = ParallelEngine { threads: 8, chunk: 1, prune: true };
    let eval = CachedEval::new(FnEval(|i: usize| losses[i]), &cache, |i| i);
    let first = eng.search(losses.len(), &eval).unwrap();
    for _ in 0..10 {
        let eval = CachedEval::new(FnEval(|i: usize| losses[i]), &cache, |i| i);
        let again = eng.search(losses.len(), &eval).unwrap();
        assert_eq!((again.index, again.loss), (first.index, first.loss));
        assert_eq!(again.stats.cache.misses, 0, "warm unbounded cache never misses");
    }
    let oracle = minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
    assert_eq!((first.index, first.loss), (oracle.index, oracle.loss));
}
