//! Differential suite for the observability layer: the engine's
//! *deterministic* counters must not depend on the pool shape. An
//! exhaustive (no-prune) search evaluates every candidate exactly once
//! whether one thread runs it or two, so the metric deltas it leaves
//! behind must be bit-identical — which is also what makes the
//! counters trustworthy for capacity math on a live server.
//!
//! Pruned/cancelled counts are *not* compared across shapes: how many
//! candidates a bound skips is a race by design (see `DESIGN.md`), and
//! the registry would faithfully record whatever happened.
//!
//! This is its own test binary: metrics are process-global, so these
//! tests serialise on one lock and flip recording explicitly rather
//! than racing the unit suites in another binary's process.

use selc_engine::{minimize, ParallelEngine, SequentialEngine};
use selc_obs::{set_metrics_enabled, MetricsSnapshot};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `work` and returns what the registry recorded during it.
fn recorded<R>(work: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    let before = selc_obs::metrics::snapshot();
    let out = work();
    let after = selc_obs::metrics::snapshot();
    (out, after.since(&before))
}

/// The deterministic counters: same-by-construction across pool
/// shapes for exhaustive searches.
const DETERMINISTIC: [&str; 4] =
    ["engine.searches", "engine.evaluated", "engine.pruned", "engine.cancelled"];

fn losses() -> Vec<f64> {
    // Deliberately tie-heavy so the parallel engine's claim order
    // actually varies between runs; the counters must not.
    (0..97).map(|i| f64::from((i * 31) % 7)).collect()
}

#[test]
fn two_threads_and_sequential_record_identical_deterministic_counters() {
    let _guard = serial();
    set_metrics_enabled(true);
    let losses = losses();

    let (seq_out, seq) = recorded(|| {
        minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap()
    });
    let two = ParallelEngine::with_threads(2).without_pruning();
    let (par_out, par) = recorded(|| minimize(&two, losses.len(), |i| losses[i]).unwrap());
    set_metrics_enabled(false);

    // Winner equality is the engine differential suite's job; here it
    // only certifies both runs did the same work.
    assert_eq!((seq_out.index, seq_out.loss), (par_out.index, par_out.loss));
    for name in DETERMINISTIC {
        assert_eq!(
            seq.counter(name),
            par.counter(name),
            "{name} must not depend on the pool shape"
        );
    }
    assert_eq!(seq.counter("engine.searches"), 1);
    assert_eq!(
        seq.counter("engine.evaluated"),
        losses.len() as u64,
        "exhaustive = every candidate"
    );
    assert_eq!(seq.counter("engine.pruned"), 0, "no bound, no prunes");
}

#[test]
fn disabled_metrics_record_exactly_nothing() {
    let _guard = serial();
    set_metrics_enabled(false);
    let losses = losses();
    let (_, delta) = recorded(|| {
        minimize(&SequentialEngine::exhaustive(), losses.len(), |i| losses[i]).unwrap();
        let two = ParallelEngine::with_threads(2).without_pruning();
        minimize(&two, losses.len(), |i| losses[i]).unwrap();
    });
    for name in DETERMINISTIC {
        assert_eq!(delta.counter(name), 0, "{name} recorded while disabled");
    }
}
