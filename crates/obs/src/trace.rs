//! The tracing half: per-thread lock-free span rings, flushed to
//! chrome://tracing JSON.
//!
//! # Recording
//!
//! A [`Span`] guard records a *begin* event when created and an *end*
//! event when dropped. Events land in a per-thread ring buffer — each
//! ring has exactly one writer (its owning thread), so recording takes
//! no lock and contends with nobody: it is a handful of relaxed/release
//! stores into pre-allocated slots. Labels are `&'static str`s interned
//! once per call site through a [`SpanLabel`] static, so an event
//! carries a `u32`, not a pointer the flusher has to chase. Each event
//! also carries one caller-chosen `u64` argument (a subtree prefix, a
//! candidate index) and a monotonic nanosecond timestamp from a shared
//! process epoch.
//!
//! Rings are bounded ([`RING_CAPACITY`] events); a thread that records
//! more wraps and overwrites its own oldest events. Tracing favours the
//! *recent* past — for a bounded-memory always-on facility that is the
//! right loss mode.
//!
//! # Flushing
//!
//! [`flush_to_path`] (or [`flush_if_configured`], keyed on
//! `SELC_TRACE=<path>`) walks every ring, validates each slot with its
//! sequence word (a single-writer seqlock: odd while a write is in
//! flight, even and generation-stamped once complete — a reader that
//! races a wrapping writer skips the slot instead of reporting a torn
//! event), sorts by timestamp, and writes one chrome://tracing JSON
//! object (`{"traceEvents": [...]}`). Load it at `chrome://tracing` or
//! <https://ui.perfetto.dev>; each ring appears as its own `tid` row.

use selc_check::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::OnceCell;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Name of the trace-path variable. Setting it to a writable path turns
/// span recording on; the bench harnesses and the serve binary flush to
/// that path on exit.
pub const TRACE_ENV: &str = "SELC_TRACE";

/// Events one thread's ring holds before wrapping (32 B per slot).
pub const RING_CAPACITY: usize = 8192;

/// The configured trace output path, when `SELC_TRACE` is set to a
/// non-empty value.
#[must_use]
pub fn configured_trace_path() -> Option<String> {
    std::env::var(TRACE_ENV).ok().filter(|p| !p.trim().is_empty())
}

fn enabled_cell() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| AtomicBool::new(configured_trace_path().is_some()))
}

/// Whether span recording is live (one relaxed load — the entire cost
/// of a [`span`] call when tracing is off).
#[inline]
#[must_use]
pub fn trace_enabled() -> bool {
    // ordering: Relaxed — an advisory on/off bit with no data behind
    // it; a span racing a toggle may record or not, both acceptable.
    enabled_cell().load(Ordering::Relaxed)
}

/// Turns span recording on or off at runtime, overriding `SELC_TRACE`.
pub fn set_trace_enabled(on: bool) {
    // ordering: Relaxed — see `trace_enabled`.
    enabled_cell().store(on, Ordering::Relaxed);
}

/// Nanoseconds since the process's first trace event (a shared
/// monotonic epoch, so timestamps from different threads order).
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn label_table() -> &'static Mutex<Vec<&'static str>> {
    static LABELS: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    LABELS.get_or_init(|| Mutex::new(Vec::new()))
}

/// A span label interned once per call site:
///
/// ```
/// use selc_obs::trace::{self, SpanLabel};
/// static CLAIM: SpanLabel = SpanLabel::new("engine.claim");
/// let _span = trace::span(&CLAIM, 7);
/// ```
///
/// The first `span` through a label takes the intern lock; every later
/// one reads a `OnceLock<u32>`.
pub struct SpanLabel {
    name: &'static str,
    id: OnceLock<u32>,
}

impl SpanLabel {
    /// A label for `name` (not yet interned — that happens on first
    /// use, and only if tracing is enabled by then).
    #[must_use]
    pub const fn new(name: &'static str) -> SpanLabel {
        SpanLabel { name, id: OnceLock::new() }
    }

    fn id(&'static self) -> u32 {
        *self.id.get_or_init(|| {
            let mut table = label_table().lock().expect("trace label table poisoned");
            table.push(self.name);
            u32::try_from(table.len() - 1).expect("fewer than 2^32 span labels")
        })
    }
}

/// One event slot, written by exactly one thread and validated by
/// readers through `seq`: odd = write in flight, `2 * generation` =
/// complete. `word` packs the label id (low 32 bits) and the end flag
/// (bit 32).
struct Slot {
    seq: AtomicU64,
    word: AtomicU64,
    ts: AtomicU64,
    arg: AtomicU64,
}

struct Ring {
    /// Worker id (registration order) — the chrome `tid` row.
    tid: u64,
    /// Events ever pushed by the owning thread; slot = `head % CAP`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64) -> Ring {
        Ring::with_capacity(tid, RING_CAPACITY)
    }

    /// A ring over `capacity` slots — the model suites use tiny rings
    /// so wrap races are reachable within a bounded schedule search.
    fn with_capacity(tid: u64, capacity: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                word: AtomicU64::new(0),
                ts: AtomicU64::new(0),
                arg: AtomicU64::new(0),
            })
            .collect();
        Ring { tid, head: AtomicU64::new(0), slots }
    }

    fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    /// Owner-thread-only push (the single-writer half of the seqlock).
    fn push(&self, label: u32, is_end: bool, arg: u64) {
        let cap = self.capacity();
        // ordering: Relaxed — `head` is only ever written by this
        // thread; the load is a self-read.
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % cap) as usize];
        let generation = h / cap + 1;
        // ordering: Release — the odd "write in flight" marker. Release
        // here orders the *previous* record's stores before the marker;
        // the data stores below each carry their own Release so no data
        // store can become visible while `seq` still reads as the old
        // even generation (see the data-store comment).
        slot.seq.store(2 * generation - 1, Ordering::Release); // writing
                                                               // ordering: Release on each data store — a Release store makes
                                                               // every prior write (including the odd `seq` above) visible
                                                               // before it. A reader whose Acquire load observes any *new*
                                                               // datum therefore also observes the odd sequence word and
                                                               // discards the slot on its re-check; with Relaxed data stores
                                                               // the new datum could surface ahead of the odd marker and a
                                                               // reader could accept a torn record. (The SC-only model checker
                                                               // cannot distinguish these: this line is justified here, not by
                                                               // a model suite.)
        slot.word.store(u64::from(label) | (u64::from(is_end) << 32), Ordering::Release);
        slot.ts.store(now_ns(), Ordering::Release); // ordering: Release — see the data-store comment above
        slot.arg.store(arg, Ordering::Release); // ordering: Release — see the data-store comment above
                                                // ordering: Release — the even "complete" marker publishes the
                                                // data stores above: a reader that Acquire-loads this value is
                                                // guaranteed to read the full record.
        slot.seq.store(2 * generation, Ordering::Release); // complete
                                                           // ordering: Release — publishes the completed slot before the
                                                           // new head; the reader's Acquire head load pairs with it.
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reader half: every completed event still resident, oldest first.
    /// Slots a concurrent writer is overwriting fail their sequence
    /// check and are skipped — a torn event is never reported.
    fn collect_into(&self, out: &mut Vec<RawEvent>) {
        let cap = self.capacity();
        // ordering: Acquire — pairs with the writer's Release head
        // store: every slot at index < h is fully published.
        let h = self.head.load(Ordering::Acquire);
        let resident = h.min(cap);
        for i in (h - resident)..h {
            let slot = &self.slots[(i % cap) as usize];
            let expected = 2 * (i / cap + 1);
            // ordering: Acquire — pairs with the writer's Release even
            // store; seeing `expected` guarantees the record's data is
            // visible to the loads below.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expected {
                continue;
            }
            // ordering: Acquire on the data loads keeps the re-check
            // load below ordered after them — with Relaxed loads the
            // re-check could be satisfied early and a wrapping writer's
            // torn record accepted.
            let word = slot.word.load(Ordering::Acquire);
            let ts = slot.ts.load(Ordering::Acquire);
            let arg = slot.arg.load(Ordering::Acquire);
            // ordering: Acquire — the seqlock re-check: any concurrent
            // overwrite flipped `seq` odd (or onward) and is caught here.
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            out.push(RawEvent {
                tid: self.tid,
                ts_ns: ts,
                label: (word & u32::MAX as u64) as u32,
                is_end: word >> 32 != 0,
                arg,
            });
        }
    }
}

struct RawEvent {
    tid: u64,
    ts_ns: u64,
    label: u32,
    is_end: bool,
    arg: u64,
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
}

fn with_ring(f: impl FnOnce(&Ring)) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let mut all = rings().lock().expect("trace ring registry poisoned");
            let ring = Arc::new(Ring::new(all.len() as u64));
            all.push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// An in-flight span: records a begin event on creation (when tracing
/// is enabled) and the matching end event on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct Span {
    /// `Some` only when the begin event was actually recorded, so an
    /// end is never emitted without its begin (e.g. tracing toggled on
    /// mid-span).
    live: Option<(u32, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((label, arg)) = self.live {
            with_ring(|r| r.push(label, true, arg));
        }
    }
}

/// Opens a span under `label` carrying `arg`. When tracing is disabled
/// this is a relaxed load, a branch, and an inert guard.
#[inline]
pub fn span(label: &'static SpanLabel, arg: u64) -> Span {
    if !trace_enabled() {
        return Span { live: None };
    }
    let id = label.id();
    with_ring(|r| r.push(id, false, arg));
    Span { live: Some((id, arg)) }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serialises every resident span event as one chrome://tracing JSON
/// object and writes it to `w`. Returns the number of events written.
/// Rings are left intact (a later flush re-reports what still fits in
/// the rings); the output is a whole JSON document either way.
///
/// # Errors
///
/// Propagates write failures.
pub fn flush_to_writer<W: Write>(w: &mut W) -> io::Result<usize> {
    let mut events = Vec::new();
    for ring in rings().lock().expect("trace ring registry poisoned").iter() {
        ring.collect_into(&mut events);
    }
    // Begin-before-end at equal timestamps keeps chrome's stack
    // builder happy on zero-length spans.
    events.sort_by_key(|e| (e.ts_ns, e.tid, e.is_end));
    let labels = label_table().lock().expect("trace label table poisoned").clone();
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = labels.get(e.label as usize).copied().unwrap_or("?");
        out.push_str("\n{\"name\":\"");
        json_escape(name, &mut out);
        let ph = if e.is_end { "E" } else { "B" };
        let ts_us = e.ts_ns as f64 / 1000.0;
        out.push_str(&format!(
            "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"args\":{{\"arg\":{}}}}}",
            e.tid, e.arg
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    w.write_all(out.as_bytes())?;
    Ok(events.len())
}

/// [`flush_to_writer`] into a freshly created (or truncated) file.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn flush_to_path<P: AsRef<Path>>(path: P) -> io::Result<usize> {
    let mut file = std::fs::File::create(path)?;
    let n = flush_to_writer(&mut file)?;
    file.flush()?;
    Ok(n)
}

/// Flushes to the `SELC_TRACE` path when that knob is set: the one call
/// benches and binaries make at exit. Returns the path and event count
/// when a flush happened.
///
/// # Errors
///
/// Propagates failures from [`flush_to_path`].
pub fn flush_if_configured() -> io::Result<Option<(String, usize)>> {
    match configured_trace_path() {
        Some(path) => {
            let n = flush_to_path(&path)?;
            Ok(Some((path, n)))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("serial lock poisoned")
    }

    static TEST_SPAN: SpanLabel = SpanLabel::new("test.trace.work");
    static TEST_INNER: SpanLabel = SpanLabel::new("test.trace.inner");

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = serial();
        let was = trace_enabled();
        set_trace_enabled(false);
        let before = {
            let mut v = Vec::new();
            for r in rings().lock().unwrap().iter() {
                r.collect_into(&mut v);
            }
            v.len()
        };
        {
            let _s = span(&TEST_SPAN, 1);
        }
        let after = {
            let mut v = Vec::new();
            for r in rings().lock().unwrap().iter() {
                r.collect_into(&mut v);
            }
            v.len()
        };
        assert_eq!(before, after, "disabled spans must not land in any ring");
        set_trace_enabled(was);
    }

    #[test]
    fn spans_nest_and_flush_in_timestamp_order() {
        let _guard = serial();
        let was = trace_enabled();
        set_trace_enabled(true);
        {
            let _outer = span(&TEST_SPAN, 7);
            let _inner = span(&TEST_INNER, 8);
        }
        set_trace_enabled(was);
        let mut buf = Vec::new();
        let n = flush_to_writer(&mut buf).expect("in-memory flush cannot fail");
        assert!(n >= 4, "two spans = four events, got {n}");
        let text = String::from_utf8(buf).expect("trace output is utf-8");
        assert!(text.contains("\"name\":\"test.trace.work\""), "output: {text}");
        assert!(text.contains("\"name\":\"test.trace.inner\""), "output: {text}");
        assert!(text.contains("\"ph\":\"B\"") && text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"args\":{\"arg\":7}"), "output: {text}");
        // Begins precede their ends for the recording thread.
        let begin = text.find("test.trace.work").expect("begin present");
        let end = text.rfind("test.trace.work").expect("end present");
        assert!(begin < end, "begin and end both present");
    }

    #[test]
    fn rings_wrap_without_panicking_and_keep_the_recent_past() {
        let _guard = serial();
        let was = trace_enabled();
        set_trace_enabled(true);
        for i in 0..(RING_CAPACITY as u64 + 100) {
            let _s = span(&TEST_SPAN, i);
        }
        set_trace_enabled(was);
        let mut events = Vec::new();
        // Only this thread's ring is guaranteed to have wrapped; global
        // collection still bounds at capacity per ring.
        for r in rings().lock().unwrap().iter() {
            r.collect_into(&mut events);
        }
        let mine: Vec<&RawEvent> =
            events.iter().filter(|e| e.arg > RING_CAPACITY as u64 / 2).collect();
        assert!(!mine.is_empty(), "recent events survive the wrap");
        assert!(
            events.iter().all(|e| e.ts_ns > 0 || e.arg == 0),
            "completed slots carry real timestamps"
        );
    }
}

/// Exhaustive small-schedule verification under the `selc_check` model
/// checker (`RUSTFLAGS="--cfg selc_model" cargo test -p selc-obs`).
#[cfg(all(test, selc_model))]
mod model_tests {
    use super::*;
    use selc_check::model::{check, spawn, Options};

    /// A writer wrapping a two-slot ring while a reader collects: on
    /// every interleaving, each event the reader reports is internally
    /// consistent (its fields all come from the same push — `arg` is a
    /// function of `label` that a torn record would violate). This
    /// proves the seqlock *protocol* (odd marker, re-check, skip) under
    /// sequential consistency; the Release/Acquire strength of each
    /// access is justified by the `// ordering:` comments instead,
    /// which the SC-only checker cannot distinguish.
    #[test]
    fn model_seqlock_readers_never_observe_torn_records() {
        check("seqlock-no-tear", Options::default(), || {
            let ring = std::sync::Arc::new(Ring::with_capacity(0, 2));
            let writer = {
                let ring = std::sync::Arc::clone(&ring);
                spawn(move || {
                    for label in 1u32..=3 {
                        ring.push(label, false, u64::from(label) * 7);
                    }
                })
            };
            let reader = {
                let ring = std::sync::Arc::clone(&ring);
                spawn(move || {
                    let mut events = Vec::new();
                    ring.collect_into(&mut events);
                    for e in &events {
                        assert_eq!(
                            e.arg,
                            u64::from(e.label) * 7,
                            "a reported event mixes fields from two pushes"
                        );
                        assert!((1..=3).contains(&e.label));
                        assert!(!e.is_end);
                    }
                    events.len()
                })
            };
            writer.join();
            let seen = reader.join();
            assert!(seen <= 2, "a two-slot ring never reports more than two events");
            // After the writer is joined, a quiescent read sees exactly
            // the resident suffix: labels 2 and 3.
            let mut settled = Vec::new();
            ring.collect_into(&mut settled);
            let labels: Vec<u32> = settled.iter().map(|e| e.label).collect();
            assert_eq!(labels, vec![2, 3], "the ring keeps the recent past after wrapping");
        });
    }
}
