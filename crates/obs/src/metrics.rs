//! The metrics half: process-global named counters, gauges, and
//! log2-bucketed histograms.
//!
//! # Model
//!
//! A metric is a name (dotted, lower-case: `engine.evaluated`,
//! `serve.latency_us.chain`) bound once to a kind in a process-global
//! registry. Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap
//! `Arc` clones of the registered cell; call sites cache them in
//! `LazyLock` statics so the registry lock is taken once per site, not
//! per event. Recording is a relaxed atomic op — and when metrics are
//! disabled (the default), it is one relaxed load and a taken branch,
//! which is the whole "near-zero when off" story.
//!
//! # Snapshots
//!
//! [`snapshot`] reads every registered metric into a
//! [`MetricsSnapshot`]: names sorted, values plain data. Snapshots are
//! subtractable ([`MetricsSnapshot::since`]) exactly like
//! `selc_cache::CacheStats`, so "what did *this* request do" falls out
//! of two scrapes, and histograms merge componentwise
//! ([`HistogramSnapshot::merged`]) — merging is associative and
//! commutative (it is bucketwise `+`), which the proptests pin down.
//!
//! # The knob
//!
//! `SELC_METRICS` follows the workspace polarity rules: `0`, `false`,
//! `off`, `no` (case-insensitive) mean off, any other set value means
//! on, unset means *default* — off for library use, but `selc-serve`
//! flips the default to on when it spawns (a daemon without telemetry
//! is the thing this crate exists to prevent). Tests and embedders use
//! [`set_metrics_enabled`] directly.

use selc_check::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Name of the metrics toggle variable.
pub const METRICS_ENV: &str = "SELC_METRICS";

/// Buckets in a histogram: one for zero, one per power of two up to
/// `u64::MAX` (bucket `i >= 1` covers `2^(i-1) ..= 2^i - 1`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The explicit `SELC_METRICS` setting, if any: `Some(false)` for the
/// off spellings (`0`/`false`/`off`/`no`, case-insensitive),
/// `Some(true)` for anything else set, `None` when unset. Callers pick
/// their own default for `None` — libraries default off, the serve
/// daemon defaults on.
#[must_use]
pub fn configured_metrics() -> Option<bool> {
    match std::env::var(METRICS_ENV) {
        Ok(v) => {
            Some(!matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no"))
        }
        Err(_) => None,
    }
}

fn enabled_cell() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| AtomicBool::new(configured_metrics().unwrap_or(false)))
}

/// Whether metric recording is live. One relaxed load: this is the
/// entire disabled-path cost of every `add`/`record` below.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    // ordering: Relaxed — an advisory on/off bit; an event racing a
    // toggle may be counted or not, and either outcome is acceptable.
    enabled_cell().load(Ordering::Relaxed)
}

/// Turns recording on or off at runtime, overriding `SELC_METRICS`.
/// Registered metrics and their accumulated values survive a toggle;
/// only *new* events are gated.
pub fn set_metrics_enabled(on: bool) {
    // ordering: Relaxed — see `metrics_enabled`.
    enabled_cell().store(on, Ordering::Relaxed);
}

/// A monotonically increasing event count.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` events (a relaxed `fetch_add`; no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if metrics_enabled() {
            // ordering: Relaxed — an independent event count; atomicity
            // of the RMW is all a counter needs, it publishes no data.
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (reads even when recording is disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — a statistical read-out; scrapes tolerate
        // any momentary value and impose no ordering on recorders.
        self.0.load(Ordering::Relaxed)
    }
}

/// A level that can move both ways (queue depths, live thread counts).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Moves the level by `delta` (no-op when disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if metrics_enabled() {
            // ordering: Relaxed — same statistical-cell argument as
            // `Counter::add`.
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Raises the level by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lowers the level by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Sets the level outright (no-op when disabled).
    #[inline]
    pub fn set(&self, value: i64) {
        if metrics_enabled() {
            // ordering: Relaxed — see `Counter::add`.
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — see `Counter::get`.
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A mergeable log2-bucketed value distribution (latencies, wait
/// times). Values land in the bucket of their bit length, so the whole
/// `u64` range fits in [`HISTOGRAM_BUCKETS`] cells and a percentile
/// read-out is exact to within one power of two — plenty to tell a
/// 40µs warm hit from a 4ms cold walk, at the cost of one relaxed
/// `fetch_add` per sample.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros` (the
/// value's bit length), so bucket `i >= 1` covers `2^(i-1) ..= 2^i - 1`.
#[inline]
#[must_use]
pub fn histogram_bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The smallest value that lands in bucket `i` — the lower bound a
/// percentile read-out reports.
///
/// # Panics
///
/// Panics if `i >= HISTOGRAM_BUCKETS`.
#[inline]
#[must_use]
pub fn histogram_bucket_floor(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Records one sample (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if metrics_enabled() {
            // ordering: Relaxed — see `Counter::add`.
            self.0.buckets[histogram_bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current bucket counts as plain data.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, cell) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            // ordering: Relaxed — a scrape, not a barrier: buckets are
            // read one by one, so a snapshot racing recorders is already
            // only bucketwise-consistent; no ordering changes that.
            *out = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count = {})", self.snapshot().count())
    }
}

/// A histogram read out as plain bucket counts: mergeable (bucketwise
/// `+`, associative and commutative) and subtractable (bucketwise
/// saturating `-`), like every other counter set in the workspace.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log2 bucket; see [`histogram_bucket_of`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucketwise sum — the merge the proptests pin as associative and
    /// commutative, so per-thread or per-shard histograms can be
    /// combined in any grouping without changing the read-out.
    #[must_use]
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (o, b) in out.buckets.iter_mut().zip(other.buckets.iter()) {
            *o += b;
        }
        out
    }

    /// Bucketwise saturating difference: what landed after `earlier`
    /// was taken, assuming `earlier` was scraped from the same (only
    /// ever growing) histogram.
    #[must_use]
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (o, b) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *o = o.saturating_sub(*b);
        }
        out
    }

    /// The lower bound of the bucket holding the `p`-th percentile
    /// sample (rank `(count - 1) * p / 100`, the same nearest-rank rule
    /// the bench harness uses), or `None` for an empty histogram.
    /// Deterministic for a given set of recorded values, exact to
    /// within one power of two.
    #[must_use]
    pub fn percentile(&self, p: u8) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = (count - 1).saturating_mul(u64::from(p.min(100))) / 100;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen > rank {
                return Some(histogram_bucket_floor(i));
            }
        }
        unreachable!("rank < count, so some bucket crosses it")
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nonzero: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0)
            .map(|(i, b)| (i, *b))
            .collect();
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("nonzero", &nonzero)
            .finish()
    }
}

/// One metric's value in a snapshot.
///
/// The histogram variant carries its 65 buckets inline — snapshots are
/// scrape-path objects built a handful at a time, so the size skew the
/// lint dislikes costs kilobytes once per scrape, while boxing would
/// cost an allocation per entry and a `Box` at every construction
/// site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's running total.
    Counter(u64),
    /// A gauge's current level.
    Gauge(i64),
    /// A histogram's bucket counts.
    Histogram(HistogramSnapshot),
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    fn value(&self) -> MetricValue {
        match self {
            Metric::Counter(c) => MetricValue::Counter(c.get()),
            Metric::Gauge(g) => MetricValue::Gauge(g.get()),
            Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn register(name: &str, make: impl FnOnce() -> Metric, want: &'static str) -> Metric {
    // Clone out before the kind check so a mismatch panic (a programming
    // error) cannot poison the registry for the rest of the process.
    let metric = {
        let mut reg = registry().lock().expect("metrics registry poisoned");
        reg.entry(name.to_owned()).or_insert_with(make).clone()
    };
    assert!(
        metric.kind() == want,
        "metric {name:?} already registered as a {}, requested as a {want}",
        metric.kind()
    );
    metric
}

/// The counter named `name`, registering it on first use. Cache the
/// handle (a `LazyLock` static at the call site) — this takes the
/// registry lock.
///
/// # Panics
///
/// Panics if `name` is already registered as a different kind: one
/// name, one kind, for the life of the process.
#[must_use]
pub fn counter(name: &str) -> Counter {
    match register(name, || Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))), "counter") {
        Metric::Counter(c) => c,
        _ => unreachable!("register checked the kind"),
    }
}

/// The gauge named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different kind.
#[must_use]
pub fn gauge(name: &str) -> Gauge {
    match register(name, || Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))), "gauge") {
        Metric::Gauge(g) => g,
        _ => unreachable!("register checked the kind"),
    }
}

/// The histogram named `name`, registering it on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different kind.
#[must_use]
pub fn histogram(name: &str) -> Histogram {
    match register(
        name,
        || {
            Metric::Histogram(Histogram(Arc::new(HistogramCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            })))
        },
        "histogram",
    ) {
        Metric::Histogram(h) => h,
        _ => unreachable!("register checked the kind"),
    }
}

/// Every registered metric, read at one point in time, names sorted.
///
/// "Deterministic" here is a layered contract. The *shape* — which
/// names appear, in what order, with what kind — depends only on which
/// call sites have run, never on thread interleaving (the registry is
/// a `BTreeMap`). The *values* are deterministic exactly when the
/// underlying quantity is: `engine.evaluated` under an exhaustive
/// search is (the differential suite demands it), queue-depth gauges
/// and lock-wait histograms are timing-born and are not.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, strictly sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// Reads every registered metric into a [`MetricsSnapshot`].
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    MetricsSnapshot {
        entries: reg.iter().map(|(name, metric)| (name.clone(), metric.value())).collect(),
    }
}

impl MetricsSnapshot {
    /// The value recorded under `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The counter named `name`, or 0 when absent (a metric nobody
    /// registered is a metric nobody incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    /// The gauge named `name`, or 0 when absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram named `name`, or the empty histogram when absent.
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => HistogramSnapshot::default(),
        }
    }

    /// What happened between `earlier` and `self`: counters and
    /// histograms subtract (saturating — both scraped from the same
    /// monotone cells), gauges keep their *later* level (a gauge is a
    /// level, not a rate, so "since" cannot difference it). Names
    /// present only in `self` pass through; names only in `earlier`
    /// are dropped (they no longer exist to report on).
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let delta = match (value, earlier.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(now.since(then))
                    }
                    // Gauges, kind changes (impossible in one process),
                    // and names new since `earlier` all report as-is.
                    (v, _) => v.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Plain-text exposition: one `name value` line per metric, sorted;
    /// histograms expose their count and nearest-rank p50/p90/p99 (the
    /// bucket floors). This is what `selc-serve metrics <addr>` prints.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "{name} {n}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Histogram(h) => {
                    let (p50, p90, p99) = (
                        h.percentile(50).unwrap_or(0),
                        h.percentile(90).unwrap_or(0),
                        h.percentile(99).unwrap_or(0),
                    );
                    let _ =
                        writeln!(out, "{name} count={} p50={p50} p90={p90} p99={p99}", h.count());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry and enable flag are process-global; every test that
    /// toggles them runs under this lock so they cannot interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().expect("serial lock poisoned")
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(histogram_bucket_of(0), 0);
        assert_eq!(histogram_bucket_of(1), 1);
        assert_eq!(histogram_bucket_of(2), 2);
        assert_eq!(histogram_bucket_of(3), 2);
        assert_eq!(histogram_bucket_of(4), 3);
        assert_eq!(histogram_bucket_of(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            let floor = histogram_bucket_floor(i);
            // The floor is the first value in its bucket and the value
            // just below it is in the previous bucket.
            assert_eq!(histogram_bucket_of(floor), i, "floor of bucket {i}");
            assert_eq!(histogram_bucket_of(floor - 1), i - 1, "below bucket {i}");
            // The bucket's last value is 2*floor - 1 (except bucket 64,
            // which is capped by the type).
            if i < 64 {
                assert_eq!(histogram_bucket_of(2 * floor - 1), i, "ceiling of bucket {i}");
                assert_eq!(histogram_bucket_of(2 * floor), i + 1, "above bucket {i}");
            }
        }
        assert_eq!(histogram_bucket_floor(0), 0);
        assert_eq!(histogram_bucket_floor(1), 1);
        assert_eq!(histogram_bucket_floor(64), 1 << 63);
    }

    #[test]
    fn percentiles_use_nearest_rank_on_bucket_floors() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.percentile(50), None, "empty histogram has no percentile");
        // 10 samples of 3 (bucket 2, floor 2), 1 sample of 1000
        // (bucket 10, floor 512).
        h.buckets[histogram_bucket_of(3)] = 10;
        h.buckets[histogram_bucket_of(1000)] = 1;
        assert_eq!(h.count(), 11);
        assert_eq!(h.percentile(0), Some(2));
        assert_eq!(h.percentile(50), Some(2));
        assert_eq!(h.percentile(90), Some(2), "rank 9 of 11 is still a 3");
        assert_eq!(h.percentile(99), Some(2), "rank 9 of 11: only the max reaches the outlier");
        assert_eq!(h.percentile(100), Some(512));
    }

    #[test]
    fn counters_gauges_and_histograms_record_only_when_enabled() {
        let _guard = serial();
        let was = metrics_enabled();
        let c = counter("test.metrics.toggle_counter");
        let g = gauge("test.metrics.toggle_gauge");
        let h = histogram("test.metrics.toggle_histogram");
        set_metrics_enabled(false);
        c.inc();
        g.set(7);
        h.record(42);
        assert_eq!(c.get(), 0, "disabled counter must not move");
        assert_eq!(g.get(), 0, "disabled gauge must not move");
        assert_eq!(h.snapshot().count(), 0, "disabled histogram must not move");
        set_metrics_enabled(true);
        c.add(3);
        g.inc();
        g.add(4);
        g.dec();
        h.record(42);
        h.record(0);
        assert_eq!(c.get(), 3);
        assert_eq!(g.get(), 4);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(snap.buckets[histogram_bucket_of(42)], 1);
        set_metrics_enabled(was);
    }

    #[test]
    fn registry_snapshots_are_sorted_and_subtractable() {
        let _guard = serial();
        let was = metrics_enabled();
        set_metrics_enabled(true);
        let c = counter("test.snapshot.requests");
        let g = gauge("test.snapshot.depth");
        let h = histogram("test.snapshot.latency");
        let before = snapshot();
        assert!(
            before.entries.windows(2).all(|w| w[0].0 < w[1].0),
            "snapshot names must be strictly sorted"
        );
        c.add(5);
        g.set(3);
        h.record(100);
        let after = snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.counter("test.snapshot.requests"), 5);
        assert_eq!(delta.gauge("test.snapshot.depth"), 3, "gauges report the later level");
        assert_eq!(delta.histogram("test.snapshot.latency").count(), 1);
        assert_eq!(delta.counter("test.snapshot.never_registered"), 0);
        // Same handle from a second registration call: same cell.
        counter("test.snapshot.requests").inc();
        assert_eq!(c.get(), 6);
        set_metrics_enabled(was);
    }

    #[test]
    fn render_text_exposes_one_line_per_metric() {
        let _guard = serial();
        let was = metrics_enabled();
        set_metrics_enabled(true);
        counter("test.render.count").add(2);
        histogram("test.render.hist").record(9);
        let text = snapshot().render_text();
        assert!(text.contains("test.render.count 2"), "text:\n{text}");
        let hist_line = text
            .lines()
            .find(|l| l.starts_with("test.render.hist"))
            .expect("histogram line present");
        assert!(hist_line.contains("count=1"), "line: {hist_line}");
        assert!(hist_line.contains("p50=8"), "9 reports its bucket floor 8: {hist_line}");
        set_metrics_enabled(was);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn one_name_one_kind() {
        let _ = counter("test.kinds.clash");
        let _ = gauge("test.kinds.clash");
    }

    #[test]
    fn configured_metrics_parses_the_off_spellings() {
        // Parse-rule check without touching the process env: the rule
        // itself lives in one match we can exercise via set/get.
        for (v, want) in
            [("0", false), ("false", false), ("OFF", false), ("no", false), ("1", true)]
        {
            let parsed =
                !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no");
            assert_eq!(parsed, want, "spelling {v:?}");
        }
    }
}
