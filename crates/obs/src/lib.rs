//! Workspace observability: metrics and trace spans, with nothing in
//! the way when they are off.
//!
//! This crate sits *below* every other workspace crate (it depends on
//! nothing, not even `selc`), so any layer — the cache's shard locks,
//! the engines' worker loops, the serve daemon's request path — can be
//! instrumented without a dependency cycle. It has two halves:
//!
//! * [`metrics`] — a process-global registry of named [atomic counters]
//!   [metrics::Counter], [gauges][metrics::Gauge], and [log2-bucketed
//!   histograms][metrics::Histogram], read out as a deterministic
//!   [`MetricsSnapshot`] (sorted names, subtractable like
//!   `selc_cache::CacheStats`). Gated by the `SELC_METRICS` knob: when
//!   off, every record path is one relaxed load and a branch.
//! * [`trace`] — per-thread lock-free ring buffers of begin/end span
//!   events (monotonic timestamps, worker id, interned static label +
//!   one `u64` argument), flushed on demand to chrome://tracing JSON
//!   when `SELC_TRACE=<path>` is set.
//!
//! Both halves are *pull*-based: recording never blocks, allocates, or
//! does I/O; aggregation and formatting happen only when somebody asks
//! (a `Metrics` scrape over the serve protocol, a trace flush at the
//! end of a bench). See `DESIGN.md` § Observability for the overhead
//! argument and the snapshot determinism contract.

pub mod metrics;
pub mod trace;

pub use metrics::{
    histogram_bucket_floor, histogram_bucket_of, metrics_enabled, set_metrics_enabled, Counter,
    Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, HISTOGRAM_BUCKETS,
    METRICS_ENV,
};
pub use trace::{set_trace_enabled, trace_enabled, Span, SpanLabel, TRACE_ENV};
