//! The trace flusher's output contract: what it writes must be a
//! well-formed JSON document in the chrome://tracing shape, whatever
//! the rings held. The checker here is a tiny hand-rolled JSON
//! recogniser (the workspace vendors no JSON crate on purpose); CI
//! additionally round-trips a real bench flush through
//! `python3 -m json.tool`.

use selc_obs::trace::{self, SpanLabel};

/// A minimal JSON well-formedness checker: objects, arrays, strings
/// with escapes, numbers, literals — the RFC 8259 grammar modulo
/// leading-zero pedantry. Returns the value's extent or an error
/// offset.
fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
        i += 1;
    }
    i
}

fn parse_value(b: &[u8], i: usize) -> Result<usize, usize> {
    let i = skip_ws(b, i);
    match b.get(i) {
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => expect_lit(b, i, b"true"),
        Some(b'f') => expect_lit(b, i, b"false"),
        Some(b'n') => expect_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        _ => Err(i),
    }
}

fn expect_lit(b: &[u8], i: usize, lit: &[u8]) -> Result<usize, usize> {
    if b.len() >= i + lit.len() && &b[i..i + lit.len()] == lit {
        Ok(i + lit.len())
    } else {
        Err(i)
    }
}

fn parse_number(b: &[u8], mut i: usize) -> Result<usize, usize> {
    let start = i;
    if b.get(i) == Some(&b'-') {
        i += 1;
    }
    let digits = |b: &[u8], mut i: usize| -> (usize, bool) {
        let s = i;
        while i < b.len() && b[i].is_ascii_digit() {
            i += 1;
        }
        (i, i > s)
    };
    let (next, any) = digits(b, i);
    if !any {
        return Err(start);
    }
    i = next;
    if b.get(i) == Some(&b'.') {
        let (next, any) = digits(b, i + 1);
        if !any {
            return Err(i);
        }
        i = next;
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        let mut j = i + 1;
        if matches!(b.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        let (next, any) = digits(b, j);
        if !any {
            return Err(i);
        }
        i = next;
    }
    Ok(i)
}

fn parse_string(b: &[u8], i: usize) -> Result<usize, usize> {
    debug_assert_eq!(b.get(i), Some(&b'"'));
    let mut i = i + 1;
    loop {
        match b.get(i) {
            None => return Err(i),
            Some(b'"') => return Ok(i + 1),
            Some(b'\\') => match b.get(i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => i += 2,
                Some(b'u') => {
                    let hex = b.get(i + 2..i + 6).ok_or(i)?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(i);
                    }
                    i += 6;
                }
                _ => return Err(i),
            },
            Some(c) if *c < 0x20 => return Err(i),
            Some(_) => i += 1,
        }
    }
}

fn parse_array(b: &[u8], i: usize) -> Result<usize, usize> {
    debug_assert_eq!(b.get(i), Some(&b'['));
    let mut i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b']') {
        return Ok(i + 1);
    }
    loop {
        i = skip_ws(b, parse_value(b, i)?);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b']') => return Ok(i + 1),
            _ => return Err(i),
        }
    }
}

fn parse_object(b: &[u8], i: usize) -> Result<usize, usize> {
    debug_assert_eq!(b.get(i), Some(&b'{'));
    let mut i = skip_ws(b, i + 1);
    if b.get(i) == Some(&b'}') {
        return Ok(i + 1);
    }
    loop {
        if b.get(i) != Some(&b'"') {
            return Err(i);
        }
        i = skip_ws(b, parse_string(b, i)?);
        if b.get(i) != Some(&b':') {
            return Err(i);
        }
        i = skip_ws(b, parse_value(b, i + 1)?);
        match b.get(i) {
            Some(b',') => i = skip_ws(b, i + 1),
            Some(b'}') => return Ok(i + 1),
            _ => return Err(i),
        }
    }
}

fn assert_well_formed_json(text: &str) {
    let b = text.as_bytes();
    match parse_value(b, 0) {
        Ok(end) => {
            let rest = skip_ws(b, end);
            assert_eq!(rest, b.len(), "trailing garbage at byte {rest}: {text:?}");
        }
        Err(at) => panic!(
            "not valid JSON at byte {at} ({:?}...): full text {text:?}",
            &text[at..text.len().min(at + 20)]
        ),
    }
}

static OUTER: SpanLabel = SpanLabel::new("test.flush.outer");
static INNER: SpanLabel = SpanLabel::new("test.flush.inner \"quoted\\path\"");

#[test]
fn flushed_traces_are_well_formed_chrome_tracing_json() {
    // Exercise the escaping path with a hostile label, nested and
    // cross-thread spans, and an empty-ring flush — all in one test
    // binary so the process-global rings see a known event set.
    let empty = {
        let mut buf = Vec::new();
        trace::flush_to_writer(&mut buf).expect("in-memory flush");
        String::from_utf8(buf).expect("utf-8")
    };
    assert_well_formed_json(&empty);
    assert!(empty.contains("\"traceEvents\""), "shape: {empty}");

    trace::set_trace_enabled(true);
    {
        let _outer = trace::span(&OUTER, u64::MAX);
        let _inner = trace::span(&INNER, 0);
        std::thread::spawn(|| {
            let _worker = trace::span(&OUTER, 42);
        })
        .join()
        .expect("worker thread");
    }
    trace::set_trace_enabled(false);

    let mut buf = Vec::new();
    let events = trace::flush_to_writer(&mut buf).expect("in-memory flush");
    assert!(events >= 6, "three spans = six events, got {events}");
    let text = String::from_utf8(buf).expect("utf-8");
    assert_well_formed_json(&text);
    assert!(text.contains("\"ph\":\"B\"") && text.contains("\"ph\":\"E\""));
    // The hostile label survived escaping and the checker accepted it.
    assert!(text.contains("quoted"), "escaped label present: {text}");
    // Two distinct rings (main + worker) means two tids.
    assert!(
        text.contains("\"tid\":0") && text.contains("\"tid\":1"),
        "both worker rings flushed: {text}"
    );

    // The checker itself must reject broken documents, or the test
    // proves nothing.
    for bad in ["{", "{\"a\":}", "[1,]", "\"unterminated", "{\"a\":1} trailing", "01x"] {
        let b = bad.as_bytes();
        let ok = parse_value(b, 0).map(|end| skip_ws(b, end) == b.len()).unwrap_or(false);
        assert!(!ok, "checker accepted invalid JSON {bad:?}");
    }
}
