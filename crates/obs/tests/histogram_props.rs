//! Property suite for histogram algebra: merging per-thread or
//! per-shard histograms must be a commutative monoid, or the read-out
//! would depend on which worker's counts folded in first — the same
//! "reduction order must not matter" discipline the engines hold their
//! `(loss, index)` merge to.

use proptest::prelude::*;
use selc_obs::{histogram_bucket_of, HistogramSnapshot, HISTOGRAM_BUCKETS};

fn from_samples(samples: &[u64]) -> HistogramSnapshot {
    let mut h = HistogramSnapshot::default();
    for s in samples {
        h.buckets[histogram_bucket_of(*s)] += 1;
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (from_samples(&a), from_samples(&b));
        prop_assert_eq!(ha.merged(&hb), hb.merged(&ha));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..48),
        b in proptest::collection::vec(any::<u64>(), 0..48),
        c in proptest::collection::vec(any::<u64>(), 0..48),
    ) {
        let (ha, hb, hc) = (from_samples(&a), from_samples(&b), from_samples(&c));
        prop_assert_eq!(ha.merged(&hb).merged(&hc), ha.merged(&hb.merged(&hc)));
    }

    #[test]
    fn empty_is_the_merge_identity_and_since_inverts_merge(
        a in proptest::collection::vec(any::<u64>(), 0..64),
        b in proptest::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb) = (from_samples(&a), from_samples(&b));
        let empty = HistogramSnapshot::default();
        prop_assert_eq!(ha.merged(&empty), ha);
        prop_assert_eq!(empty.merged(&ha), ha);
        // A later scrape minus an earlier one recovers the interval:
        // merge then since round-trips.
        prop_assert_eq!(ha.merged(&hb).since(&ha), hb);
        prop_assert_eq!(ha.merged(&hb).count(), ha.count() + hb.count());
    }

    #[test]
    fn every_sample_lands_in_exactly_one_bucket(v in any::<u64>()) {
        let bucket = histogram_bucket_of(v);
        prop_assert!(bucket < HISTOGRAM_BUCKETS);
        // The bucket's floor really is a lower bound on the value.
        prop_assert!(selc_obs::histogram_bucket_floor(bucket) <= v);
        // And the next bucket's floor (when there is one) is above it.
        if bucket + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < selc_obs::histogram_bucket_floor(bucket + 1));
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_the_extremes(
        samples in proptest::collection::vec(0_u64..1_000_000, 1..128),
    ) {
        let h = from_samples(&samples);
        let (min, max) = (
            *samples.iter().min().expect("non-empty"),
            *samples.iter().max().expect("non-empty"),
        );
        let mut last = 0;
        for p in [0u8, 10, 25, 50, 75, 90, 99, 100] {
            let v = h.percentile(p).expect("non-empty histogram");
            prop_assert!(v >= last, "p{p}: {v} < previous {last}");
            // Bucket floors under-report by at most 2x, never overshoot.
            prop_assert!(v <= max, "p{p}: floor {v} above the max sample {max}");
            last = v;
        }
        prop_assert!(h.percentile(0).expect("non-empty") <= min);
    }
}
