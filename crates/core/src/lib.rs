//! # selc — handling the selection monad
//!
//! A Rust library of **algebraic effect handlers with choice
//! continuations**, reproducing the programming interface of *Handling the
//! Selection Monad* (Plotkin & Xie, PLDI 2025), §4.
//!
//! Ordinary effect handlers receive a delimited continuation `k`; handlers
//! here additionally receive a **choice continuation** `l` that reports the
//! *loss* the rest of the program would incur for each candidate operation
//! result. Losses are recorded with the built-in writer effect [`loss()`](sel::loss);
//! programmers write handlers that *select* — greedily, by gradient
//! descent, by grid search, by game-theoretic reasoning — using the losses
//! of their possible choices.
//!
//! ## Quickstart
//!
//! ```
//! use selc::{effect, handler, loss, perform, Handler, Sel};
//!
//! effect! {
//!     /// Binary choice (§2.3).
//!     pub effect NDet {
//!         /// Choose a boolean.
//!         op Decide : () => bool;
//!     }
//! }
//!
//! // pgm ≜ b ← decide(); i ← if b then 1 else 2; loss(2·i);
//! //       if b then 'a' else 'b'
//! let pgm = perform::<f64, Decide>(()).and_then(|b| {
//!     let i = if b { 1.0 } else { 2.0 };
//!     loss(2.0 * i).map(move |_| if b { 'a' } else { 'b' })
//! });
//!
//! // An argmin handler: probe both futures, resume with the cheaper one.
//! let h: Handler<f64, char, char> = Handler::builder::<NDet>()
//!     .on::<Decide>(|(), l, k| {
//!         l.at(true).and_then(move |y| {
//!             let (l, k) = (l.clone(), k.clone());
//!             l.at(false).and_then(move |z| {
//!                 if y <= z { k.resume(true) } else { k.resume(false) }
//!             })
//!         })
//!     })
//!     .build_identity();
//!
//! let (total_loss, result) = handler::handle(&h, pgm).run_unwrap();
//! assert_eq!(result, 'a');
//! assert_eq!(total_loss, 2.0);
//! ```
//!
//! ## Architecture
//!
//! * [`Sel<L, A>`](Sel) — the monad
//!   `(A → Eff L) → Eff (L, A)` of §4.2, over any loss monoid [`Loss`];
//! * [`Eff`](eff::Eff) — a free monad over operation nodes (the substitute
//!   for the Haskell artifact's multi-prompt delimited continuations);
//! * [`Handler`] / [`handler::handle`] — the fold implementing rules
//!   (R5)/(R6)/(S1) of the paper's operational semantics;
//! * [`Sel::local0`] / [`Sel::reset`] / [`Sel::lreset`] — the loss-scoping
//!   constructs `⟨·⟩_0` and `reset`;
//! * [`effect!`] — effect/operation declaration;
//! * [`sel!`] — `do`-notation.
//!
//! The λC calculus this library implements is itself reproduced — with its
//! type system, small-step semantics, and denotational semantics — in the
//! companion crates `lambda-c` and `selc-denote`.

pub mod eff;
pub mod effect;
pub mod handler;
pub mod loss;
pub mod memo;
pub mod ordered;
pub mod replay;
pub mod runtime;
pub mod sel;
pub mod value;

/// The `SELC_*` environment knobs' shared parser and the cache knobs —
/// re-exported from `selc-cache` so every crate reads configuration the
/// same way (`selc::env::env_usize` backs `SELC_THREADS`,
/// `SELC_CACHE_SHARDS`, and `SELC_CACHE_CAP` alike).
pub use selc_cache::env;

pub use effect::{perform, Effect, Operation};
pub use handler::{handle, handle_with, Choice, Handler, HandlerBuilder, Resume};
pub use loss::Loss;
pub use memo::MemoChoice;
pub use ordered::{f64_sort_key, OrderedLoss};
pub use replay::{replay_loss, Replay, ReplaySpace};
pub use runtime::{zero_cont, BindCont, LossCont, NodeCont, RawChoice, RawResume, SelRun};
pub use sel::{loss, Sel, UnhandledOp};
pub use selc_cache::{CacheHandle, CacheStats, LocalCache, ShardedCache, SharedCache};
pub use value::Value;
