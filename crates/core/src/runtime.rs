//! The single home of the runtime's continuation machinery.
//!
//! Every `Rc<dyn Fn …>` continuation shape the runtime threads around —
//! the node continuations stored in [`Eff::Op`](crate::eff::Eff::Op), the
//! bind continuations of the free monad, the loss continuations of
//! [`Sel`](crate::sel::Sel), and the dynamically-typed choice/delimited
//! continuations handlers receive — is aliased *here and only here*, with
//! smart constructors, so that `eff.rs`, `sel.rs`, and `handler.rs` (and
//! downstream crates, via the re-exports in [`crate`]) compile against one
//! shared surface. Continuations are `Rc`-shared because they are
//! multi-shot: the all-results handler of §2.2 resumes twice, and choice
//! continuations re-run the future once per probed candidate.

use crate::eff::Eff;
use crate::loss::Loss;
use crate::value::Value;
use std::rc::Rc;

/// The continuation stored in an [`Eff::Op`](crate::eff::Eff::Op) node:
/// feed the (dynamically-typed) operation result to continue the program.
pub type NodeCont<A> = Rc<dyn Fn(Value) -> Eff<A>>;

/// A monadic bind continuation over [`Eff`], `A → Eff<B>`.
pub type BindCont<A, B> = Rc<dyn Fn(A) -> Eff<B>>;

/// A loss continuation `a → Eff loss`: maps a candidate result to the loss
/// the rest of the program would incur (the `γ` of §4.2).
pub type LossCont<L, A> = Rc<dyn Fn(&A) -> Eff<L>>;

/// The payload of a [`Sel`](crate::sel::Sel): run under a loss continuation,
/// produce an effectful loss–value pair — `(A → Eff L) → Eff (L, A)`.
pub type SelRun<L, A> = Rc<dyn Fn(LossCont<L, A>) -> Eff<(L, A)>>;

/// Raw (dynamically-typed) choice continuation handed to handler clauses:
/// `(param, candidate result) → loss`.
pub type RawChoice<L> = Rc<dyn Fn(Value, Value) -> crate::sel::Sel<L, L>>;

/// Raw (dynamically-typed) delimited continuation handed to handler
/// clauses: `(param, operation result) → B`.
pub type RawResume<L, B> = Rc<dyn Fn(Value, Value) -> crate::sel::Sel<L, B>>;

/// A stored handler clause: `(param, op arg, choice cont, delimited cont)`.
pub(crate) type RawClause<L, B> =
    Rc<dyn Fn(Value, Value, RawChoice<L>, RawResume<L, B>) -> crate::sel::Sel<L, B>>;

/// A stored return clause: `(param, result) → B` under the handler.
pub(crate) type RawRet<L, A, B> = Rc<dyn Fn(Value, A) -> crate::sel::Sel<L, B>>;

/// Wraps a closure as a shareable [`NodeCont`].
pub fn node_cont<A: 'static>(f: impl Fn(Value) -> Eff<A> + 'static) -> NodeCont<A> {
    Rc::new(f)
}

/// Wraps a closure as a shareable [`BindCont`].
pub fn bind_cont<A: 'static, B: 'static>(f: impl Fn(A) -> Eff<B> + 'static) -> BindCont<A, B> {
    Rc::new(f)
}

/// Wraps a closure as a shareable [`LossCont`].
pub fn loss_cont<L: Loss, A: 'static>(f: impl Fn(&A) -> Eff<L> + 'static) -> LossCont<L, A> {
    Rc::new(f)
}

/// The loss continuation that assigns zero loss to every result — how
/// program execution starts (§3.3) and the continuation installed by
/// [`Sel::local0`](crate::sel::Sel::local0).
pub fn zero_cont<L: Loss, A: 'static>() -> LossCont<L, A> {
    Rc::new(|_| Eff::Pure(L::zero()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_cont_is_zero_everywhere() {
        let g = zero_cont::<f64, i32>();
        for x in [-3, 0, 7] {
            match g(&x) {
                Eff::Pure(l) => assert_eq!(l, 0.0),
                _ => panic!("zero_cont must be pure"),
            }
        }
    }

    #[test]
    fn constructors_share_multi_shot() {
        let k = bind_cont(|x: i32| Eff::Pure(x + 1));
        let k2 = Rc::clone(&k);
        assert!(matches!(k(1), Eff::Pure(2)));
        assert!(matches!(k2(10), Eff::Pure(11)));
    }

    #[test]
    fn loss_cont_wraps_closure() {
        let g = loss_cont(|x: &i32| Eff::Pure(f64::from(*x) * 2.0));
        match g(&3) {
            Eff::Pure(l) => assert_eq!(l, 6.0),
            _ => panic!("expected pure"),
        }
    }
}
