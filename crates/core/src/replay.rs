//! Replayable programs — the factory contract of the search engine.
//!
//! `Eff` trees and `Sel` computations are woven out of `Rc<dyn Fn>`
//! continuations (see [`crate::runtime`]), so they are neither `Send` nor
//! `Sync` and can never migrate between threads. What *can* cross a
//! thread boundary is a **factory**: plain `Send + Sync` data plus a pure
//! recipe that rebuilds the program tree locally on whichever worker
//! needs it. Rebuilding is sound because constructing a `Sel`/`Eff` tree
//! performs no side effects (the substitution argument in `DESIGN.md`):
//! every replay of the same factory denotes the same computation.
//!
//! [`Replay`] is the nullary form (one fixed program, rebuilt per
//! worker); [`ReplaySpace`] is the indexed form (one program per
//! candidate in a finite search space). Both are blanket-implemented for
//! closures, so call sites just pass `move || …` / `move |i| …`.

use crate::loss::Loss;
use crate::sel::Sel;

/// A thread-shippable recipe for one `Sel` program.
pub trait Replay<L, A>: Send + Sync {
    /// Builds a fresh copy of the program on the calling thread.
    fn build(&self) -> Sel<L, A>;
}

impl<L, A, F> Replay<L, A> for F
where
    F: Fn() -> Sel<L, A> + Send + Sync,
{
    fn build(&self) -> Sel<L, A> {
        self()
    }
}

/// A thread-shippable recipe for a finite family of `Sel` programs,
/// indexed by candidate number.
pub trait ReplaySpace<L, A>: Send + Sync {
    /// Builds a fresh copy of candidate `index`'s program on the calling
    /// thread.
    fn build(&self, index: usize) -> Sel<L, A>;
}

impl<L, A, F> ReplaySpace<L, A> for F
where
    F: Fn(usize) -> Sel<L, A> + Send + Sync,
{
    fn build(&self, index: usize) -> Sel<L, A> {
        self(index)
    }
}

/// Runs a replayed program to its recorded loss, panicking on unhandled
/// operations (factories must produce fully handled programs).
pub fn replay_loss<L: Loss, A: Clone + 'static>(program: &Sel<L, A>) -> L {
    program.run().expect("replayed program reached the top level with an unhandled operation").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sel::loss;

    #[test]
    fn closures_are_replay_factories() {
        let f = || loss(2.0).map(|_| 7_i32);
        fn assert_replay<R: Replay<f64, i32>>(r: &R) -> (f64, i32) {
            r.build().run_unwrap()
        }
        assert_eq!(assert_replay(&f), (2.0, 7));
        assert_eq!(assert_replay(&f), (2.0, 7), "replays are repeatable");
    }

    #[test]
    fn indexed_factories_build_per_candidate() {
        let f = |i: usize| loss(i as f64).map(move |_| i);
        fn assert_space<R: ReplaySpace<f64, usize>>(r: &R, i: usize) -> f64 {
            replay_loss(&r.build(i))
        }
        assert_eq!(assert_space(&f, 0), 0.0);
        assert_eq!(assert_space(&f, 3), 3.0);
    }

    #[test]
    fn factories_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let f = || Sel::<f64, i32>::pure(1);
        assert_send_sync(&f);
        std::thread::scope(|s| {
            let h = s.spawn(|| f.build().run_unwrap());
            assert_eq!(h.join().unwrap(), (0.0, 1));
        });
    }
}
