//! Totally ordered losses — the comparison contract of the search engine.
//!
//! The sequential handlers compare losses with `PartialOrd` (`<` on `f64`)
//! as they scan candidates in order. A *parallel* argmin must instead
//! merge per-worker bests, which is only deterministic under a **total**
//! order: [`OrderedLoss::cmp_loss`] provides one, and `selc-engine`
//! reduces winners by `(cmp_loss, candidate index)` lexicographically so
//! the merged result is independent of thread interleaving.
//!
//! For branch-and-bound pruning the engine additionally keeps the best
//! loss seen so far in a single atomic word. [`OrderedLoss::prune_bits`]
//! supplies the encoding: a monotone order-embedding into `u64`. Loss
//! types without a sensible embedding return `None` and simply opt out of
//! pruning (the search stays correct, just exhaustive).

use crate::loss::Loss;
use std::cmp::Ordering;

/// A loss monoid with a total order usable for deterministic parallel
/// argmin/argmax and an optional atomic pruning encoding.
///
/// # Contract
///
/// * `cmp_loss` is a total order **consistent with the partial `<` the
///   sequential scans use** wherever that is defined (for floats:
///   [`f64::total_cmp`], which agrees with `<` on all non-NaN,
///   non-negative-zero values);
/// * when `prune_bits` returns `Some` for two values, the `u64`s compare
///   exactly as `cmp_loss` does (a monotone order-embedding). Returning
///   `None` disables pruning for this type; it must then do so for
///   *every* value.
pub trait OrderedLoss: Loss + Send + Sync {
    /// Total order on losses; `Ordering::Less` means "strictly better"
    /// for a minimising search.
    fn cmp_loss(&self, other: &Self) -> Ordering;

    /// Monotone embedding into `u64` for the engine's atomic shared
    /// bound, or `None` to opt out of pruning.
    fn prune_bits(&self) -> Option<u64> {
        None
    }
}

/// Order-preserving `u64` key for an `f64` (the classic sign-flip trick):
/// `key(a) < key(b)` iff `a.total_cmp(b) == Less`. Public so downstream
/// prune encodings (e.g. the λC bridge's loss embedding) share this one
/// definition instead of re-deriving it — the branch-and-bound soundness
/// argument needs every encoder to agree bit for bit.
pub fn f64_sort_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

impl OrderedLoss for f64 {
    fn cmp_loss(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
    fn prune_bits(&self) -> Option<u64> {
        Some(f64_sort_key(*self))
    }
}

impl OrderedLoss for f32 {
    fn cmp_loss(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
    fn prune_bits(&self) -> Option<u64> {
        Some(f64_sort_key(f64::from(*self)))
    }
}

impl OrderedLoss for i64 {
    fn cmp_loss(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
    fn prune_bits(&self) -> Option<u64> {
        // Shift the sign so two's-complement order becomes unsigned order.
        Some((*self as u64) ^ (1 << 63))
    }
}

/// Lexicographic order on product losses. No pruning encoding: two words
/// do not fit in one atomic, and a partial order on the first component
/// alone would be unsound.
impl<A: OrderedLoss, B: OrderedLoss> OrderedLoss for (A, B) {
    fn cmp_loss(&self, other: &Self) -> Ordering {
        self.0.cmp_loss(&other.0).then_with(|| self.1.cmp_loss(&other.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_total_order_matches_lt_on_ordinary_values() {
        let xs = [-3.5_f64, -1.0, 0.0, 0.25, 2.0, 1e9];
        for a in xs {
            for b in xs {
                let by_cmp = a.cmp_loss(&b) == Ordering::Less;
                assert_eq!(by_cmp, a < b, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn f64_prune_bits_embed_the_order() {
        let xs = [f64::NEG_INFINITY, -7.25, -0.0, 0.0, 1.5, 1e300, f64::INFINITY];
        for a in xs {
            for b in xs {
                let (ka, kb) = (a.prune_bits().unwrap(), b.prune_bits().unwrap());
                assert_eq!(ka.cmp(&kb), a.cmp_loss(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn i64_prune_bits_embed_the_order() {
        let xs = [i64::MIN, -5, 0, 3, i64::MAX];
        for a in xs {
            for b in xs {
                let (ka, kb) = (a.prune_bits().unwrap(), b.prune_bits().unwrap());
                assert_eq!(ka.cmp(&kb), a.cmp_loss(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn pair_order_is_lexicographic_and_unprunable() {
        let a = (1.0_f64, 9.0_f64);
        let b = (1.0, 2.0);
        assert_eq!(a.cmp_loss(&b), Ordering::Greater);
        assert_eq!(b.cmp_loss(&a), Ordering::Less);
        assert_eq!(a.cmp_loss(&a), Ordering::Equal);
        assert!(a.prune_bits().is_none());
    }
}
