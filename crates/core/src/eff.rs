//! The free effect monad `Eff`.
//!
//! The paper's Haskell library implements `Eff` with multi-prompt delimited
//! continuations; Rust has no such control operator, so we use the
//! equivalent *free monad over operation nodes*: a computation is either
//! finished ([`Eff::Pure`]) or suspended on an operation call with a
//! (multi-shot, `Rc`-shared) continuation. Handlers fold over this tree —
//! which is precisely how the operational semantics (rules R5/R6) treats
//! handling. See DESIGN.md for the substitution argument.

use crate::effect::Operation;
use crate::runtime::{bind_cont, node_cont, BindCont, NodeCont};
use crate::value::Value;
use std::any::TypeId;
use std::rc::Rc;

/// Identifies which operation a node carries: a user-declared operation, or
/// an internal *return-loss marker* (one per `handle` activation) used to
/// evaluate the handled computation's loss continuation with the handler's
/// current parameter — the implementation of rule (S1)'s use of the
/// *current* parameter `v` under parameterized handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A user operation, identified by its marker type.
    User(TypeId),
    /// A return-loss marker for the `handle` activation with this id.
    Marker(u64),
}

/// A suspended operation call.
#[derive(Clone, Debug)]
pub struct OpCall {
    /// The effect the operation belongs to (TypeId of the effect marker).
    pub effect_id: TypeId,
    /// Which operation.
    pub kind: OpKind,
    /// Effect name, for diagnostics.
    pub effect_name: &'static str,
    /// Operation name, for diagnostics.
    pub op_name: &'static str,
    /// The operation argument (the paper's `out` value).
    pub arg: Value,
}

impl OpCall {
    /// A call of the user operation `Op`.
    pub fn user<Op: Operation>(arg: Value) -> OpCall {
        OpCall {
            effect_id: TypeId::of::<Op::Effect>(),
            kind: OpKind::User(TypeId::of::<Op>()),
            effect_name: <Op::Effect as crate::effect::Effect>::NAME,
            op_name: Op::NAME,
            arg,
        }
    }

    /// A return-loss marker for handle activation `id`.
    pub(crate) fn marker(id: u64, arg: Value) -> OpCall {
        OpCall {
            effect_id: TypeId::of::<MarkerEffect>(),
            kind: OpKind::Marker(id),
            effect_name: "<internal>",
            op_name: "<return-loss>",
            arg,
        }
    }

    /// Is this the marker of activation `id`?
    pub(crate) fn is_marker(&self, id: u64) -> bool {
        self.kind == OpKind::Marker(id)
    }
}

/// Private effect tag for marker nodes.
enum MarkerEffect {}

/// A free-monad computation: finished, or suspended on an operation.
///
/// The continuation is `Rc<dyn Fn…>` because handlers may resume it any
/// number of times (the all-results handler of §2.2 resumes twice; choice
/// continuations re-run it for every probed candidate).
pub enum Eff<A> {
    /// A finished computation.
    Pure(A),
    /// Suspended on `OpCall`; feed the operation result to continue.
    Op(OpCall, NodeCont<A>),
}

impl<A> Clone for Eff<A>
where
    A: Clone,
{
    fn clone(&self) -> Self {
        match self {
            Eff::Pure(a) => Eff::Pure(a.clone()),
            Eff::Op(c, k) => Eff::Op(c.clone(), Rc::clone(k)),
        }
    }
}

impl<A> std::fmt::Debug for Eff<A>
where
    A: std::fmt::Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Eff::Pure(a) => write!(f, "Eff::Pure({a:?})"),
            Eff::Op(c, _) => write!(f, "Eff::Op({}::{}, <k>)", c.effect_name, c.op_name),
        }
    }
}

impl<A: 'static> Eff<A> {
    /// The unit.
    pub fn pure(a: A) -> Eff<A> {
        Eff::Pure(a)
    }

    /// Monadic bind with a shared continuation.
    pub fn bind<B: 'static>(self, f: BindCont<A, B>) -> Eff<B> {
        match self {
            Eff::Pure(a) => f(a),
            Eff::Op(call, k) => Eff::Op(call, node_cont(move |v| k(v).bind(Rc::clone(&f)))),
        }
    }

    /// Monadic bind with an owned closure.
    pub fn and_then<B: 'static>(self, f: impl Fn(A) -> Eff<B> + 'static) -> Eff<B> {
        self.bind(bind_cont(f))
    }

    /// Functorial map.
    pub fn map<B: 'static>(self, f: impl Fn(A) -> B + 'static) -> Eff<B> {
        self.and_then(move |a| Eff::Pure(f(a)))
    }

    /// Is the computation finished?
    pub fn is_pure(&self) -> bool {
        matches!(self, Eff::Pure(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effect::Effect;

    enum TestEffect {}
    impl Effect for TestEffect {
        const NAME: &'static str = "Test";
    }
    enum Ask {}
    impl Operation for Ask {
        type Effect = TestEffect;
        type Arg = ();
        type Ret = i32;
        const NAME: &'static str = "Ask";
    }

    #[test]
    fn pure_bind_is_application() {
        let e = Eff::pure(2).map(|x| x + 1);
        match e {
            Eff::Pure(v) => assert_eq!(v, 3),
            _ => panic!("expected pure"),
        }
    }

    #[test]
    fn bind_reaches_through_op_nodes() {
        let e: Eff<i32> =
            Eff::Op(OpCall::user::<Ask>(Value::new(())), Rc::new(|v| Eff::Pure(v.get::<i32>())));
        let e2 = e.map(|x| x * 10);
        match e2 {
            Eff::Op(call, k) => {
                assert_eq!(call.op_name, "Ask");
                match k(Value::new(7_i32)) {
                    Eff::Pure(v) => assert_eq!(v, 70),
                    _ => panic!("expected pure after resume"),
                }
            }
            _ => panic!("expected op"),
        }
    }

    #[test]
    fn continuations_are_multi_shot() {
        let e: Eff<i32> = Eff::Op(
            OpCall::user::<Ask>(Value::new(())),
            Rc::new(|v| Eff::Pure(v.get::<i32>() + 1)),
        );
        if let Eff::Op(_, k) = e {
            let a = match k(Value::new(1_i32)) {
                Eff::Pure(v) => v,
                _ => unreachable!(),
            };
            let b = match k(Value::new(10_i32)) {
                Eff::Pure(v) => v,
                _ => unreachable!(),
            };
            assert_eq!((a, b), (2, 11));
        } else {
            panic!("expected op");
        }
    }

    #[test]
    fn marker_identity() {
        let c = OpCall::marker(7, Value::new(()));
        assert!(c.is_marker(7));
        assert!(!c.is_marker(8));
    }
}
