//! Probe memoisation — the §6 future-work direction made concrete.
//!
//! §6: "the choice continuation shares expressions with the delimited
//! continuation (though this need not lead to recomputations) … we expect
//! that further program transformations and advanced compiler
//! optimizations (e.g., memoization) will mitigate recomputations."
//!
//! [`MemoChoice`] wraps a [`Choice`] with a per-activation cache keyed by
//! the candidate result: probing the same candidate twice costs one run.
//! This is sound because probes are observationally pure (they advance
//! nothing and record nothing — a property pinned down by
//! `tests/laws.rs::probes_are_observationally_pure`) and the wrapped
//! choice continuation is fixed for the lifetime of one clause
//! invocation.
//!
//! What it does **not** do — and cannot do soundly at this level — is
//! share work between a probe and the eventual *resumption*: resuming
//! must actually perform the future's effects, so the Hartmann–Schrijvers
//! –Gibbons generalised selection monad (which returns choice and loss
//! together) remains the real fix for that half of the cost.

use crate::handler::Choice;
use crate::loss::Loss;
use crate::sel::Sel;
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;
use std::rc::Rc;

/// Probe-cache counters, readable at any point through
/// [`MemoChoice::stats`]. `probes` counts *real* (uncached) runs of the
/// future; `hits` counts probes answered from the cache. The search
/// engine's telemetry (`selc-engine`'s `SearchStats`) aggregates these
/// across candidates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Real (uncached) probes: each one ran the future.
    pub probes: u64,
    /// Probes answered from the cache.
    pub hits: u64,
}

impl MemoStats {
    /// Component-wise sum, for aggregating across several caches.
    #[must_use]
    pub fn merged(&self, other: &MemoStats) -> MemoStats {
        MemoStats { probes: self.probes + other.probes, hits: self.hits + other.hits }
    }
}

/// A memoising wrapper around a choice continuation. Create with
/// [`MemoChoice::new`] (hashable candidates) or [`MemoChoice::with_key`]
/// (explicit key function, e.g. for `f64`-valued candidates).
pub struct MemoChoice<L, R, K = R>
where
    K: Eq + Hash,
{
    inner: Choice<L, R>,
    key: Rc<dyn Fn(&R) -> K>,
    cache: Rc<RefCell<HashMap<K, L>>>,
    stats: Rc<RefCell<MemoStats>>,
}

impl<L, R, K: Eq + Hash> Clone for MemoChoice<L, R, K> {
    fn clone(&self) -> Self {
        MemoChoice {
            inner: self.inner.clone(),
            key: Rc::clone(&self.key),
            cache: Rc::clone(&self.cache),
            stats: Rc::clone(&self.stats),
        }
    }
}

impl<L: Loss, R: Clone + Eq + Hash + 'static> MemoChoice<L, R, R> {
    /// Memoises by the candidate value itself.
    pub fn new(inner: &Choice<L, R>) -> MemoChoice<L, R, R> {
        MemoChoice::with_key(inner, |r: &R| r.clone())
    }
}

impl<L: Loss, R: Clone + 'static, K: Clone + Eq + Hash + 'static> MemoChoice<L, R, K> {
    /// Memoises by an explicit key (use when `R` is not hashable, e.g.
    /// quantise `f64` candidates to bits).
    pub fn with_key(inner: &Choice<L, R>, key: impl Fn(&R) -> K + 'static) -> MemoChoice<L, R, K> {
        MemoChoice {
            inner: inner.clone(),
            key: Rc::new(key),
            cache: Rc::new(RefCell::new(HashMap::new())),
            stats: Rc::new(RefCell::new(MemoStats::default())),
        }
    }

    /// Probes candidate `y`, consulting the cache first.
    ///
    /// The returned computation checks the cache *at run time* (probes
    /// sequenced earlier in the same clause fill it), so
    /// `memo.at(x).and_then(|_| memo.at(x))` runs the future once.
    pub fn at(&self, y: R) -> Sel<L, L> {
        let me = self.clone();
        Sel::from_fn(move |g| {
            let k = (me.key)(&y);
            if let Some(hit) = me.cache.borrow().get(&k) {
                me.stats.borrow_mut().hits += 1;
                return crate::eff::Eff::Pure((L::zero(), hit.clone()));
            }
            let cache = Rc::clone(&me.cache);
            let stats = Rc::clone(&me.stats);
            me.inner
                .at(y.clone())
                .map(move |l| {
                    stats.borrow_mut().probes += 1;
                    cache.borrow_mut().insert(k.clone(), l.clone());
                    l
                })
                .run_with(g)
        })
    }

    /// Probe/hit counters accumulated so far.
    pub fn stats(&self) -> MemoStats {
        *self.stats.borrow()
    }

    /// Number of *real* (uncached) probes performed so far.
    pub fn real_probes(&self) -> u64 {
        self.stats().probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{effect, handle, loss, perform, Handler};

    effect! {
        effect Grid {
            op PickRate : () => u32;
        }
    }

    /// A tuner that probes a grid *with duplicates* and returns the
    /// argmin; with memoisation each distinct rate's future runs once.
    fn tuner(grid: Vec<u32>, memo: bool, counter: Rc<RefCell<u64>>) -> Handler<f64, f64, u32> {
        Handler::builder::<Grid>()
            .on::<PickRate>(move |(), l, _k| {
                let grid = grid.clone();
                let m = MemoChoice::new(&l);
                let probe = move |r: u32| -> Sel<f64, f64> {
                    if memo {
                        m.at(r)
                    } else {
                        l.at(r)
                    }
                };
                fn go(
                    probe: Rc<dyn Fn(u32) -> Sel<f64, f64>>,
                    grid: Rc<Vec<u32>>,
                    i: usize,
                    best: (u32, f64),
                ) -> Sel<f64, u32> {
                    if i == grid.len() {
                        return Sel::pure(best.0);
                    }
                    let r = grid[i];
                    probe(r).and_then(move |e| {
                        let best = if e < best.1 { (r, e) } else { best };
                        go(Rc::clone(&probe), Rc::clone(&grid), i + 1, best)
                    })
                }
                go(Rc::new(probe), Rc::new(grid), 0, (0, f64::INFINITY))
            })
            .ret({
                let _c = counter;
                |_| Sel::pure(0)
            })
            .build()
    }

    /// Each probe runs the future, which bumps `counter`.
    fn future(counter: Rc<RefCell<u64>>) -> Sel<f64, f64> {
        perform::<f64, PickRate>(()).and_then(move |r| {
            *counter.borrow_mut() += 1;
            let err = (r as f64 - 3.0).powi(2);
            loss(err).map(move |_| err)
        })
    }

    #[test]
    fn duplicates_are_cached() {
        let grid = vec![1u32, 5, 1, 5, 1, 3];
        let runs_plain = Rc::new(RefCell::new(0u64));
        let h = tuner(grid.clone(), false, Rc::clone(&runs_plain));
        let (_, best) = handle(&h, future(Rc::clone(&runs_plain))).run_unwrap();
        assert_eq!(best, 3);
        let plain = *runs_plain.borrow();

        let runs_memo = Rc::new(RefCell::new(0u64));
        let h = tuner(grid, true, Rc::clone(&runs_memo));
        let (_, best) = handle(&h, future(Rc::clone(&runs_memo))).run_unwrap();
        assert_eq!(best, 3);
        let memo = *runs_memo.borrow();

        assert_eq!(plain, 6, "one future run per probe without memo");
        assert_eq!(memo, 3, "one future run per distinct candidate with memo");
    }

    #[test]
    fn memoised_and_plain_choices_agree() {
        for grid in [vec![0u32, 6], vec![2, 2, 2], vec![4, 1, 4, 1]] {
            let c1 = Rc::new(RefCell::new(0));
            let c2 = Rc::new(RefCell::new(0));
            let a = handle(&tuner(grid.clone(), false, c1.clone()), future(c1)).run_unwrap();
            let b = handle(&tuner(grid, true, c2.clone()), future(c2)).run_unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stats_count_probes_and_hits() {
        // Grid [1, 5, 1, 5, 1, 3]: three distinct rates → 3 real probes,
        // three repeats → 3 hits. The stats handle shares state with the
        // clause's clone, so reading it after the run sees the totals.
        let grid = vec![1u32, 5, 1, 5, 1, 3];
        let counter = Rc::new(RefCell::new(0u64));
        let stats_cell: Rc<RefCell<Option<MemoStats>>> = Rc::new(RefCell::new(None));
        let sink = Rc::clone(&stats_cell);
        let h: Handler<f64, f64, u32> = Handler::builder::<Grid>()
            .on::<PickRate>(move |(), l, _k| {
                let m = MemoChoice::new(&l);
                let grid = grid.clone();
                let sink = Rc::clone(&sink);
                let probe = {
                    let m = m.clone();
                    move |r: u32| m.at(r)
                };
                fn go(
                    probe: Rc<dyn Fn(u32) -> Sel<f64, f64>>,
                    grid: Rc<Vec<u32>>,
                    i: usize,
                    best: (u32, f64),
                ) -> Sel<f64, u32> {
                    if i == grid.len() {
                        return Sel::pure(best.0);
                    }
                    let r = grid[i];
                    probe(r).and_then(move |e| {
                        let best = if e < best.1 { (r, e) } else { best };
                        go(Rc::clone(&probe), Rc::clone(&grid), i + 1, best)
                    })
                }
                go(Rc::new(probe), Rc::new(grid), 0, (0, f64::INFINITY)).map(move |w| {
                    *sink.borrow_mut() = Some(m.stats());
                    w
                })
            })
            .ret(|_| Sel::pure(0))
            .build();
        let (_, best) = handle(&h, future(counter)).run_unwrap();
        assert_eq!(best, 3);
        let stats = stats_cell.borrow().expect("clause ran");
        assert_eq!(stats, MemoStats { probes: 3, hits: 3 });
        assert_eq!(stats.merged(&stats), MemoStats { probes: 6, hits: 6 });
    }

    #[test]
    fn with_key_supports_float_candidates() {
        effect! {
            effect FGrid {
                op PickF : () => ();
            }
        }
        let h: Handler<f64, f64, f64> = Handler::builder::<FGrid>()
            .on::<PickF>(|(), l, _k| {
                // candidates are the probe *inputs* here — trivial op, the
                // point is the key function on a non-Hash type
                let m: MemoChoice<f64, (), u8> = MemoChoice::with_key(&l, |()| 0u8);
                m.at(()).and_then(move |a| {
                    let m = m.clone();
                    m.at(()).map(move |b| {
                        assert_eq!(a, b);
                        a
                    })
                })
            })
            .ret(Sel::pure)
            .build();
        let prog = perform::<f64, PickF>(()).and_then(|()| loss(7.0).map(|_| 1.0));
        let (_, probed) = handle(&h, prog).run_unwrap();
        assert_eq!(probed, 7.0);
    }
}
