//! Probe memoisation — the §6 future-work direction made concrete.
//!
//! §6: "the choice continuation shares expressions with the delimited
//! continuation (though this need not lead to recomputations) … we expect
//! that further program transformations and advanced compiler
//! optimizations (e.g., memoization) will mitigate recomputations."
//!
//! [`MemoChoice`] wraps a [`Choice`] with a cache keyed by the candidate
//! result: probing the same candidate twice costs one run. It is generic
//! over the cache behind it ([`selc_cache::CacheHandle`]):
//!
//! * the default, a per-activation [`LocalCache`] (the seed's
//!   `Rc<RefCell<HashMap>>`, now one backend among others) — create with
//!   [`MemoChoice::new`] / [`MemoChoice::with_key`];
//! * a shared, `Send + Sync` [`selc_cache::SharedCache`] handle — create
//!   with [`MemoChoice::with_cache`] — so probe results survive the
//!   activation and are reused across engine workers and whole runs.
//!
//! Per-activation memoisation is sound because probes are
//! observationally pure (they advance nothing and record nothing — a
//! property pinned down by `tests/laws.rs::probes_are_observationally_pure`)
//! and the wrapped choice continuation is fixed for the lifetime of one
//! clause invocation. *Sharing* a cache beyond the activation needs one
//! more fact: every sharer's probed future must agree on every key (same
//! key ⇒ bit-identical loss). Replays of one program factory
//! (`selc::Replay`) satisfy this by purity; anything else must key-split
//! or `advance_epoch` between programs (see `selc-cache`'s handle
//! contract).
//!
//! What memoisation does **not** do — and cannot do soundly at this
//! level — is share work between a probe and the eventual *resumption*:
//! resuming must actually perform the future's effects, so the
//! Hartmann–Schrijvers–Gibbons generalised selection monad (which
//! returns choice and loss together) remains the real fix for that half
//! of the cost.

use crate::handler::Choice;
use crate::loss::Loss;
use crate::sel::Sel;
use selc_cache::{CacheHandle, CacheStats, LocalCache};
use std::hash::Hash;
use std::rc::Rc;

/// A memoising wrapper around a choice continuation. Create with
/// [`MemoChoice::new`] (hashable candidates), [`MemoChoice::with_key`]
/// (explicit key function, e.g. for `f64`-valued candidates), or
/// [`MemoChoice::with_cache`] (explicit cache handle, e.g. a
/// [`selc_cache::SharedCache`] shared across workers).
pub struct MemoChoice<L, R, K = R, C = LocalCache<K, L>>
where
    K: Eq + Hash,
{
    inner: Choice<L, R>,
    key: Rc<dyn Fn(&R) -> K>,
    cache: C,
}

impl<L, R, K: Eq + Hash, C: Clone> Clone for MemoChoice<L, R, K, C> {
    fn clone(&self) -> Self {
        MemoChoice {
            inner: self.inner.clone(),
            key: Rc::clone(&self.key),
            cache: self.cache.clone(),
        }
    }
}

impl<L: Loss, R: Clone + Eq + Hash + 'static> MemoChoice<L, R, R> {
    /// Memoises by the candidate value itself, in a fresh
    /// per-activation cache.
    pub fn new(inner: &Choice<L, R>) -> MemoChoice<L, R, R> {
        MemoChoice::with_key(inner, |r: &R| r.clone())
    }
}

impl<L: Loss, R: Clone + 'static, K: Clone + Eq + Hash + 'static> MemoChoice<L, R, K> {
    /// Memoises by an explicit key (use when `R` is not hashable, e.g.
    /// quantise `f64` candidates to bits), in a fresh per-activation
    /// cache.
    pub fn with_key(inner: &Choice<L, R>, key: impl Fn(&R) -> K + 'static) -> MemoChoice<L, R, K> {
        MemoChoice::with_cache(inner, key, LocalCache::new())
    }
}

impl<L, R, K, C> MemoChoice<L, R, K, C>
where
    L: Loss,
    R: Clone + 'static,
    K: Clone + Eq + Hash + 'static,
    C: CacheHandle<K, L> + Clone + 'static,
{
    /// Memoises through an explicit cache handle. Pass a
    /// [`selc_cache::SharedCache`] clone to share probe results across
    /// activations, workers, and runs — subject to the handle's sharing
    /// contract (every sharer's future must agree on every key).
    pub fn with_cache(
        inner: &Choice<L, R>,
        key: impl Fn(&R) -> K + 'static,
        cache: C,
    ) -> MemoChoice<L, R, K, C> {
        MemoChoice { inner: inner.clone(), key: Rc::new(key), cache }
    }

    /// Probes candidate `y`, consulting the cache first.
    ///
    /// The returned computation checks the cache *at run time* (probes
    /// sequenced earlier in the same clause fill it), so
    /// `memo.at(x).and_then(|_| memo.at(x))` runs the future once.
    pub fn at(&self, y: R) -> Sel<L, L> {
        let me = self.clone();
        Sel::from_fn(move |g| {
            let k = (me.key)(&y);
            if let Some(hit) = me.cache.lookup(&k) {
                return crate::eff::Eff::Pure((L::zero(), hit));
            }
            let cache = me.cache.clone();
            me.inner
                .at(y.clone())
                .map(move |l| {
                    cache.store(k.clone(), l.clone());
                    l
                })
                .run_with(g)
        })
    }

    /// This memo's cache counters. For the default per-activation cache
    /// these are exactly this activation's probes: `misses` counts real
    /// (uncached) runs of the future, `hits` counts probes answered from
    /// the cache. For a shared handle they are the handle's *global*
    /// counters — use [`CacheStats::since`] against a snapshot for one
    /// activation's share.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of *real* (uncached) probes performed so far — cache
    /// misses, each of which ran the future.
    pub fn real_probes(&self) -> u64 {
        self.stats().misses
    }

    /// The cache handle behind this memo (e.g. to snapshot stats before
    /// a run).
    pub fn cache(&self) -> &C {
        &self.cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{effect, handle, loss, perform, Handler};
    use std::cell::RefCell;
    use std::sync::Arc;

    effect! {
        effect Grid {
            op PickRate : () => u32;
        }
    }

    /// A tuner that probes a grid *with duplicates* and returns the
    /// argmin; with memoisation each distinct rate's future runs once.
    fn tuner(grid: Vec<u32>, memo: bool, counter: Rc<RefCell<u64>>) -> Handler<f64, f64, u32> {
        Handler::builder::<Grid>()
            .on::<PickRate>(move |(), l, _k| {
                let grid = grid.clone();
                let m = MemoChoice::new(&l);
                let probe = move |r: u32| -> Sel<f64, f64> {
                    if memo {
                        m.at(r)
                    } else {
                        l.at(r)
                    }
                };
                fn go(
                    probe: Rc<dyn Fn(u32) -> Sel<f64, f64>>,
                    grid: Rc<Vec<u32>>,
                    i: usize,
                    best: (u32, f64),
                ) -> Sel<f64, u32> {
                    if i == grid.len() {
                        return Sel::pure(best.0);
                    }
                    let r = grid[i];
                    probe(r).and_then(move |e| {
                        let best = if e < best.1 { (r, e) } else { best };
                        go(Rc::clone(&probe), Rc::clone(&grid), i + 1, best)
                    })
                }
                go(Rc::new(probe), Rc::new(grid), 0, (0, f64::INFINITY))
            })
            .ret({
                let _c = counter;
                |_| Sel::pure(0)
            })
            .build()
    }

    /// Each probe runs the future, which bumps `counter`.
    fn future(counter: Rc<RefCell<u64>>) -> Sel<f64, f64> {
        perform::<f64, PickRate>(()).and_then(move |r| {
            *counter.borrow_mut() += 1;
            let err = (r as f64 - 3.0).powi(2);
            loss(err).map(move |_| err)
        })
    }

    #[test]
    fn duplicates_are_cached() {
        let grid = vec![1u32, 5, 1, 5, 1, 3];
        let runs_plain = Rc::new(RefCell::new(0u64));
        let h = tuner(grid.clone(), false, Rc::clone(&runs_plain));
        let (_, best) = handle(&h, future(Rc::clone(&runs_plain))).run_unwrap();
        assert_eq!(best, 3);
        let plain = *runs_plain.borrow();

        let runs_memo = Rc::new(RefCell::new(0u64));
        let h = tuner(grid, true, Rc::clone(&runs_memo));
        let (_, best) = handle(&h, future(Rc::clone(&runs_memo))).run_unwrap();
        assert_eq!(best, 3);
        let memo = *runs_memo.borrow();

        assert_eq!(plain, 6, "one future run per probe without memo");
        assert_eq!(memo, 3, "one future run per distinct candidate with memo");
    }

    #[test]
    fn memoised_and_plain_choices_agree() {
        for grid in [vec![0u32, 6], vec![2, 2, 2], vec![4, 1, 4, 1]] {
            let c1 = Rc::new(RefCell::new(0));
            let c2 = Rc::new(RefCell::new(0));
            let a = handle(&tuner(grid.clone(), false, c1.clone()), future(c1)).run_unwrap();
            let b = handle(&tuner(grid, true, c2.clone()), future(c2)).run_unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stats_count_probes_and_hits() {
        // Grid [1, 5, 1, 5, 1, 3]: three distinct rates → 3 real probes
        // (cache misses), three repeats → 3 hits. The stats handle shares
        // state with the clause's clone, so reading it after the run sees
        // the totals.
        let grid = vec![1u32, 5, 1, 5, 1, 3];
        let counter = Rc::new(RefCell::new(0u64));
        let stats_cell: Rc<RefCell<Option<CacheStats>>> = Rc::new(RefCell::new(None));
        let sink = Rc::clone(&stats_cell);
        let h: Handler<f64, f64, u32> = Handler::builder::<Grid>()
            .on::<PickRate>(move |(), l, _k| {
                let m = MemoChoice::new(&l);
                let grid = grid.clone();
                let sink = Rc::clone(&sink);
                let probe = {
                    let m = m.clone();
                    move |r: u32| m.at(r)
                };
                fn go(
                    probe: Rc<dyn Fn(u32) -> Sel<f64, f64>>,
                    grid: Rc<Vec<u32>>,
                    i: usize,
                    best: (u32, f64),
                ) -> Sel<f64, u32> {
                    if i == grid.len() {
                        return Sel::pure(best.0);
                    }
                    let r = grid[i];
                    probe(r).and_then(move |e| {
                        let best = if e < best.1 { (r, e) } else { best };
                        go(Rc::clone(&probe), Rc::clone(&grid), i + 1, best)
                    })
                }
                go(Rc::new(probe), Rc::new(grid), 0, (0, f64::INFINITY)).map(move |w| {
                    *sink.borrow_mut() = Some(m.stats());
                    w
                })
            })
            .ret(|_| Sel::pure(0))
            .build();
        let (_, best) = handle(&h, future(counter)).run_unwrap();
        assert_eq!(best, 3);
        let stats = stats_cell.borrow().expect("clause ran");
        assert_eq!(stats, CacheStats { hits: 3, misses: 3, insertions: 3, evictions: 0 });
        assert_eq!(stats.merged(&stats).hits, 6);
    }

    #[test]
    fn with_key_supports_float_candidates() {
        effect! {
            effect FGrid {
                op PickF : () => ();
            }
        }
        let h: Handler<f64, f64, f64> = Handler::builder::<FGrid>()
            .on::<PickF>(|(), l, _k| {
                // candidates are the probe *inputs* here — trivial op, the
                // point is the key function on a non-Hash type
                let m: MemoChoice<f64, (), u8> = MemoChoice::with_key(&l, |()| 0u8);
                m.at(()).and_then(move |a| {
                    let m = m.clone();
                    m.at(()).map(move |b| {
                        assert_eq!(a, b);
                        a
                    })
                })
            })
            .ret(Sel::pure)
            .build();
        let prog = perform::<f64, PickF>(()).and_then(|()| loss(7.0).map(|_| 1.0));
        let (_, probed) = handle(&h, prog).run_unwrap();
        assert_eq!(probed, 7.0);
    }

    #[test]
    fn shared_cache_survives_the_activation() {
        // Two runs of the same tuner program against one SharedCache:
        // the second run's probes are all hits — zero future runs.
        let cache: selc_cache::SharedCache<u32, f64> =
            Arc::new(selc_cache::ShardedCache::unbounded(4));
        let mk_handler = |cache: selc_cache::SharedCache<u32, f64>,
                          counter: Rc<RefCell<u64>>|
         -> Handler<f64, f64, u32> {
            let _c = counter;
            Handler::builder::<Grid>()
                .on::<PickRate>(move |(), l, _k| {
                    let m = MemoChoice::with_cache(&l, |r: &u32| *r, Arc::clone(&cache));
                    let grid = Rc::new(vec![1u32, 5, 3]);
                    fn go(
                        m: MemoChoice<f64, u32, u32, selc_cache::SharedCache<u32, f64>>,
                        grid: Rc<Vec<u32>>,
                        i: usize,
                        best: (u32, f64),
                    ) -> Sel<f64, u32> {
                        if i == grid.len() {
                            return Sel::pure(best.0);
                        }
                        let r = grid[i];
                        m.at(r).and_then(move |e| {
                            let best = if e < best.1 { (r, e) } else { best };
                            go(m.clone(), Rc::clone(&grid), i + 1, best)
                        })
                    }
                    go(m, grid, 0, (0, f64::INFINITY))
                })
                .ret(|_| Sel::pure(0))
                .build()
        };
        let runs = Rc::new(RefCell::new(0u64));
        let h = mk_handler(Arc::clone(&cache), Rc::clone(&runs));
        let (_, best1) = handle(&h, future(Rc::clone(&runs))).run_unwrap();
        assert_eq!(best1, 3);
        assert_eq!(*runs.borrow(), 3, "first run probes every distinct rate");

        let h = mk_handler(Arc::clone(&cache), Rc::clone(&runs));
        let (_, best2) = handle(&h, future(Rc::clone(&runs))).run_unwrap();
        assert_eq!(best2, best1, "cached run picks the identical winner");
        assert_eq!(*runs.borrow(), 3, "second run is answered entirely from the shared cache");
        assert_eq!(cache.stats().hits, 3);

        // Epoch invalidation brings the futures back.
        cache.advance_epoch();
        let h = mk_handler(Arc::clone(&cache), Rc::clone(&runs));
        let (_, best3) = handle(&h, future(Rc::clone(&runs))).run_unwrap();
        assert_eq!(best3, best1);
        assert_eq!(*runs.borrow(), 6, "invalidated entries are re-probed");
    }
}
