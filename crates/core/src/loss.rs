//! The loss monoid `R`.
//!
//! The paper's library makes the loss type "any `Monoid` (not just a
//! specific numerical type)" (§4.2). [`Loss`] is that monoid: `zero` is the
//! unit and `combine` the (commutative) addition used to aggregate the
//! losses recorded by [`loss()`](crate::sel::loss).

/// A commutative monoid of losses.
///
/// Implementations must satisfy, up to the type's own notion of equality:
///
/// * `l.combine(&Loss::zero()) == l` and `Loss::zero().combine(&l) == l`;
/// * `a.combine(&b.combine(&c)) == a.combine(&b).combine(&c)`;
/// * `a.combine(&b) == b.combine(&a)` (the paper assumes commutativity —
///   semantically, `loss` commutes with the other operations).
pub trait Loss: Clone + std::fmt::Debug + 'static {
    /// The monoid unit `0`.
    fn zero() -> Self;
    /// The monoid operation `+`.
    fn combine(&self, other: &Self) -> Self;
}

impl Loss for f64 {
    fn zero() -> Self {
        0.0
    }
    fn combine(&self, other: &Self) -> Self {
        self + other
    }
}

impl Loss for f32 {
    fn zero() -> Self {
        0.0
    }
    fn combine(&self, other: &Self) -> Self {
        self + other
    }
}

impl Loss for i64 {
    fn zero() -> Self {
        0
    }
    fn combine(&self, other: &Self) -> Self {
        self + other
    }
}

/// The trivial monoid — programs that never consult losses.
impl Loss for () {
    fn zero() -> Self {}
    fn combine(&self, _other: &Self) -> Self {}
}

/// Product monoid, combined component-wise. Used for multi-objective
/// losses, e.g. the prisoner's-dilemma sentence pairs of §4.3.
impl<A: Loss, B: Loss> Loss for (A, B) {
    fn zero() -> Self {
        (A::zero(), B::zero())
    }
    fn combine(&self, other: &Self) -> Self {
        (self.0.combine(&other.0), self.1.combine(&other.1))
    }
}

/// Element-wise vector monoid, padding the shorter vector with zeros (so
/// `zero` can be the empty vector regardless of dimension).
impl Loss for Vec<f64> {
    fn zero() -> Self {
        Vec::new()
    }
    fn combine(&self, other: &Self) -> Self {
        let n = self.len().max(other.len());
        (0..n)
            .map(|i| self.get(i).copied().unwrap_or(0.0) + other.get(i).copied().unwrap_or(0.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_monoid_laws() {
        let a = 1.5_f64;
        let b = -2.0;
        let c = 4.25;
        assert_eq!(a.combine(&f64::zero()), a);
        assert_eq!(a.combine(&b), b.combine(&a));
        assert_eq!(a.combine(&b).combine(&c), a.combine(&b.combine(&c)));
    }

    #[test]
    fn pair_monoid_componentwise() {
        let a = (1.0_f64, 2.0_f64);
        let b = (3.0, -2.0);
        assert_eq!(a.combine(&b), (4.0, 0.0));
        assert_eq!(<(f64, f64)>::zero(), (0.0, 0.0));
    }

    #[test]
    fn vec_monoid_pads() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0];
        assert_eq!(a.combine(&b), vec![11.0, 2.0]);
        assert_eq!(Vec::<f64>::zero().combine(&a), a);
    }

    #[test]
    fn unit_monoid_is_trivial() {
        assert_eq!(<()>::zero(), ());
        assert_eq!(().combine(&()), ());
    }
}
