//! Effect and operation declarations.
//!
//! An *effect* groups a finite set of *operations* (the paper follows Koka
//! in this). Both are declared as uninhabited marker types — most easily
//! via the [`effect!`](macro@crate::effect) macro, the analogue of the paper's
//! Template Haskell `[effect| data NDet = NDet { decide :: Op () Bool } ]`:
//!
//! ```
//! use selc::{effect, perform, Sel};
//!
//! effect! {
//!     /// Non-deterministic choice (§2.2).
//!     pub effect NDet {
//!         /// Choose a boolean.
//!         op Decide : () => bool;
//!     }
//! }
//!
//! let _choose: Sel<f64, bool> = perform::<f64, Decide>(());
//! ```

use crate::eff::{Eff, OpCall};
use crate::loss::Loss;
use crate::sel::Sel;
use crate::value::Value;
use std::rc::Rc;

/// An effect label — a group of operations handled together.
pub trait Effect: 'static {
    /// Display name.
    const NAME: &'static str;
}

/// An operation `op : Arg → Ret` of some effect.
///
/// Following the paper's convention (§3.1, footnote 3): `Arg` is the
/// paper's `out` type (sent to start the effect) and `Ret` is the paper's
/// `in` type (received to continue).
pub trait Operation: 'static {
    /// The effect this operation belongs to.
    type Effect: Effect;
    /// Argument type (the paper's `out`).
    type Arg: Clone + 'static;
    /// Result type (the paper's `in`).
    type Ret: Clone + 'static;
    /// Display name.
    const NAME: &'static str;
}

/// Performs an operation: suspends the computation on an `Op` node whose
/// continuation returns the operation result with zero recorded loss
/// (cf. the unit in rule R5's `f_k`).
pub fn perform<L: Loss, Op: Operation>(arg: Op::Arg) -> Sel<L, Op::Ret> {
    Sel::from_fn(move |_g| {
        Eff::Op(
            OpCall::user::<Op>(Value::new(arg.clone())),
            Rc::new(|v: Value| Eff::Pure((L::zero(), v.get::<Op::Ret>()))),
        )
    })
}

/// Declares an effect and its operations (see [module docs](self)).
///
/// Grammar: `effect! { <attrs> pub effect Name { <attrs> op OpName : ArgTy => RetTy ; ... } }`
#[macro_export]
macro_rules! effect {
    (
        $(#[$emeta:meta])*
        $vis:vis effect $ename:ident {
            $(
                $(#[$ometa:meta])*
                op $oname:ident : $arg:ty => $ret:ty ;
            )+
        }
    ) => {
        $(#[$emeta])*
        $vis enum $ename {}

        impl $crate::Effect for $ename {
            const NAME: &'static str = stringify!($ename);
        }

        $(
            $(#[$ometa])*
            $vis enum $oname {}

            impl $crate::Operation for $oname {
                type Effect = $ename;
                type Arg = $arg;
                type Ret = $ret;
                const NAME: &'static str = stringify!($oname);
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    effect! {
        /// Test effect.
        pub effect Tele {
            /// Ask for a number.
            op Ask : () => i32;
            /// Emit a number.
            op Tell : i32 => ();
        }
    }

    #[test]
    fn macro_generates_markers() {
        assert_eq!(<Tele as Effect>::NAME, "Tele");
        assert_eq!(<Ask as Operation>::NAME, "Ask");
        assert_eq!(<Tell as Operation>::NAME, "Tell");
    }

    #[test]
    fn perform_suspends_on_op_node() {
        let s: Sel<f64, i32> = perform::<f64, Ask>(());
        let zero = Rc::new(|_: &i32| Eff::Pure(0.0_f64));
        match s.run_with(zero) {
            Eff::Op(call, k) => {
                assert_eq!(call.op_name, "Ask");
                match k(Value::new(9_i32)) {
                    Eff::Pure((l, v)) => {
                        assert_eq!(l, 0.0);
                        assert_eq!(v, 9);
                    }
                    _ => panic!("expected pure"),
                }
            }
            _ => panic!("expected op"),
        }
    }

    #[test]
    fn macro_works_in_function_scope() {
        effect! {
            effect Local {
                op Ping : u8 => u8;
            }
        }
        assert_eq!(<Ping as Operation>::NAME, "Ping");
    }
}
