//! Dynamically-typed values crossing operation boundaries.
//!
//! Operations are declared with static `Arg`/`Ret` types, but the handling
//! machinery is necessarily dynamic (a handler stores clauses for several
//! operations of one effect). [`Value`] is a cheap, clonable, immutable
//! `Rc<dyn Any>` box; the typed wrappers in [`crate::handler`] downcast at
//! the edges, so user code never sees `Value` unless it opts into the raw
//! API.

use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// An immutable dynamically-typed value.
#[derive(Clone)]
pub struct Value(Rc<dyn Any>);

impl Value {
    /// Boxes a value.
    pub fn new<T: 'static>(t: T) -> Value {
        Value(Rc::new(t))
    }

    /// Downcasts to `T`, cloning out of the shared box.
    ///
    /// # Panics
    ///
    /// Panics with the expected type name if the dynamic type is not `T`;
    /// this indicates a mis-declared operation (`Arg`/`Ret` mismatch),
    /// which is a programming error.
    pub fn get<T: Clone + 'static>(&self) -> T {
        self.try_get::<T>().unwrap_or_else(|| {
            panic!(
                "value type mismatch: expected {} — check the operation's Arg/Ret declaration",
                std::any::type_name::<T>()
            )
        })
    }

    /// Downcasts to `T`, returning `None` on mismatch.
    pub fn try_get<T: Clone + 'static>(&self) -> Option<T> {
        self.0.downcast_ref::<T>().cloned()
    }

    /// Whether the boxed value has dynamic type `T`.
    pub fn is<T: 'static>(&self) -> bool {
        self.0.is::<T>()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value(<{:?}>)", self.0.type_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Value::new(42_i32);
        assert_eq!(v.get::<i32>(), 42);
        assert!(v.is::<i32>());
        assert!(!v.is::<u8>());
    }

    #[test]
    fn try_get_mismatch_is_none() {
        let v = Value::new("hi".to_owned());
        assert_eq!(v.try_get::<i32>(), None);
        assert_eq!(v.try_get::<String>().as_deref(), Some("hi"));
    }

    #[test]
    #[should_panic(expected = "value type mismatch")]
    fn get_mismatch_panics() {
        Value::new(1_u8).get::<u16>();
    }

    #[test]
    fn clone_shares() {
        let v = Value::new(vec![1, 2, 3]);
        let w = v.clone();
        assert_eq!(w.get::<Vec<i32>>(), vec![1, 2, 3]);
    }
}
