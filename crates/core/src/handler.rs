//! Handlers with choice continuations — the paper's central contribution.
//!
//! A handler clause receives, besides the operation argument:
//!
//! * the **choice continuation** `l` ([`Choice`]): probe a candidate
//!   operation result and get back the *loss* the rest of the program
//!   would incur — `(with h from p handle K[y]) ◮ g` in rule (R5);
//! * the **delimited continuation** `k` ([`Resume`]): resume the program
//!   with a chosen result — `⟨with h from p handle K[y]⟩_g` in rule (R5),
//!   localised at the loss continuation captured when the operation was
//!   performed (so continuations evaluate the same way however the handler
//!   uses them — the design point discussed under expression (2) in §3.3).
//!
//! Handlers are *parameterized* (§3.1): a local parameter threads through
//! resumptions (`resume_with`) and is visible to the return clause. The
//! handled computation's loss continuation consults the return clause with
//! the parameter *current at probe time*; this is implemented with a
//! per-activation internal marker node (see [`crate::eff::OpKind`]).
//!
//! # Example — the §2.2 all-results handler
//!
//! ```
//! use selc::{effect, handler, perform, Handler, Sel};
//!
//! effect! {
//!     effect NDet {
//!         op Decide : () => bool;
//!     }
//! }
//!
//! let h: Handler<f64, bool, Vec<bool>> = Handler::builder::<NDet>()
//!     .on::<Decide>(|(), _l, k| {
//!         k.resume(true).and_then(move |ts: Vec<bool>| {
//!             let k = k.clone();
//!             k.resume(false).map(move |fs| {
//!                 let mut out = ts.clone();
//!                 out.extend(fs);
//!                 out
//!             })
//!         })
//!     })
//!     .ret(|b| Sel::pure(vec![b]))
//!     .build();
//!
//! let prog = perform::<f64, Decide>(())
//!     .and_then(|x| perform::<f64, Decide>(()).map(move |y| x && y));
//! let (_, all) = handler::handle(&h, prog).run_unwrap();
//! assert_eq!(all, vec![true, false, false, false]);
//! ```

use crate::eff::{Eff, OpCall, OpKind};
use crate::loss::Loss;
use crate::runtime::{loss_cont, node_cont, RawChoice, RawClause, RawResume, RawRet};
use crate::sel::{then_loss, LossCont, Sel};
use crate::value::Value;
use std::any::TypeId;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ACTIVATION: AtomicU64 = AtomicU64::new(1);

/// The typed choice continuation handed to operation clauses.
///
/// `l.at(y)` answers: *if this operation returned `y`, what loss would the
/// rest of the program (up to the loss-continuation scope) incur?* It may
/// be invoked any number of times and does not advance the computation.
pub struct Choice<L, R> {
    param: Value,
    raw: RawChoice<L>,
    _marker: PhantomData<R>,
}

impl<L, R> Clone for Choice<L, R> {
    fn clone(&self) -> Self {
        Choice { param: self.param.clone(), raw: Rc::clone(&self.raw), _marker: PhantomData }
    }
}

impl<L: Loss, R: Clone + 'static> Choice<L, R> {
    /// Probes candidate result `y` under the current handler parameter.
    pub fn at(&self, y: R) -> Sel<L, L> {
        (self.raw)(self.param.clone(), Value::new(y))
    }

    /// Probes candidate result `y` with an updated handler parameter.
    pub fn at_with<P: Clone + 'static>(&self, p: P, y: R) -> Sel<L, L> {
        (self.raw)(Value::new(p), Value::new(y))
    }
}

impl<L, R> std::fmt::Debug for Choice<L, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Choice(<loss continuation>)")
    }
}

/// The typed delimited continuation handed to operation clauses.
///
/// `k.resume(y)` resumes the handled computation with operation result `y`
/// (re-handling the remainder with this handler, rule R5). Multi-shot.
pub struct Resume<L, R, B> {
    param: Value,
    raw: RawResume<L, B>,
    _marker: PhantomData<R>,
}

impl<L, R, B> Clone for Resume<L, R, B> {
    fn clone(&self) -> Self {
        Resume { param: self.param.clone(), raw: Rc::clone(&self.raw), _marker: PhantomData }
    }
}

impl<L: Loss, R: Clone + 'static, B: Clone + 'static> Resume<L, R, B> {
    /// Resumes with result `y`, keeping the current handler parameter.
    pub fn resume(&self, y: R) -> Sel<L, B> {
        (self.raw)(self.param.clone(), Value::new(y))
    }

    /// Resumes with result `y` and an updated handler parameter.
    pub fn resume_with<P: Clone + 'static>(&self, p: P, y: R) -> Sel<L, B> {
        (self.raw)(Value::new(p), Value::new(y))
    }
}

impl<L, R, B> std::fmt::Debug for Resume<L, R, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Resume(<delimited continuation>)")
    }
}

/// A handler for one effect, transforming computations of type `A` into
/// computations of type `B` (the judgment `h : par, σ ! εℓ ⇒ σ' ! ε`).
pub struct Handler<L, A, B> {
    effect_id: TypeId,
    effect_name: &'static str,
    clauses: HashMap<TypeId, RawClause<L, B>>,
    ret: RawRet<L, A, B>,
}

impl<L, A, B> std::fmt::Debug for Handler<L, A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handler(<{}>, {} clauses)", self.effect_name, self.clauses.len())
    }
}

impl<L: Loss, A: Clone + 'static, B: Clone + 'static> Handler<L, A, B> {
    /// Starts building a handler for effect `E`.
    pub fn builder<E: crate::Effect>() -> HandlerBuilder<L, A, B> {
        HandlerBuilder {
            effect_id: TypeId::of::<E>(),
            effect_name: E::NAME,
            clauses: HashMap::new(),
            ret: None,
        }
    }
}

/// Builder for [`Handler`]s. Add one clause per operation with
/// [`HandlerBuilder::on`] (or [`HandlerBuilder::on_param`] to observe and
/// update the handler parameter), set the return clause, then
/// [`HandlerBuilder::build`].
pub struct HandlerBuilder<L, A, B> {
    effect_id: TypeId,
    effect_name: &'static str,
    clauses: HashMap<TypeId, RawClause<L, B>>,
    ret: Option<RawRet<L, A, B>>,
}

impl<L: Loss, A: Clone + 'static, B: Clone + 'static> HandlerBuilder<L, A, B> {
    /// Adds the clause for operation `Op` (parameter-oblivious form,
    /// mirroring the paper's `operation (λx l k → …)`).
    ///
    /// # Panics
    ///
    /// Panics if `Op` belongs to a different effect than the builder's.
    pub fn on<Op: crate::Operation>(
        mut self,
        f: impl Fn(Op::Arg, Choice<L, Op::Ret>, Resume<L, Op::Ret, B>) -> Sel<L, B> + 'static,
    ) -> Self {
        assert_eq!(
            TypeId::of::<Op::Effect>(),
            self.effect_id,
            "operation {} does not belong to effect {}",
            Op::NAME,
            self.effect_name
        );
        let clause: RawClause<L, B> = Rc::new(move |p, arg, raw_l, raw_k| {
            let l = Choice { param: p.clone(), raw: raw_l, _marker: PhantomData };
            let k = Resume { param: p, raw: raw_k, _marker: PhantomData };
            f(arg.get::<Op::Arg>(), l, k)
        });
        self.clauses.insert(TypeId::of::<Op>(), clause);
        self
    }

    /// Adds the clause for operation `Op`, exposing the current handler
    /// parameter (of type `P`, as passed to [`handle_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `Op` belongs to a different effect than the builder's.
    pub fn on_param<Op: crate::Operation, P: Clone + 'static>(
        mut self,
        f: impl Fn(P, Op::Arg, Choice<L, Op::Ret>, Resume<L, Op::Ret, B>) -> Sel<L, B> + 'static,
    ) -> Self {
        assert_eq!(
            TypeId::of::<Op::Effect>(),
            self.effect_id,
            "operation {} does not belong to effect {}",
            Op::NAME,
            self.effect_name
        );
        let clause: RawClause<L, B> = Rc::new(move |p, arg, raw_l, raw_k| {
            let l = Choice { param: p.clone(), raw: raw_l, _marker: PhantomData };
            let k = Resume { param: p.clone(), raw: raw_k, _marker: PhantomData };
            f(p.get::<P>(), arg.get::<Op::Arg>(), l, k)
        });
        self.clauses.insert(TypeId::of::<Op>(), clause);
        self
    }

    /// Sets the return clause `return ↦ λx. …`.
    pub fn ret(mut self, f: impl Fn(A) -> Sel<L, B> + 'static) -> Self {
        self.ret = Some(Rc::new(move |_p, a| f(a)));
        self
    }

    /// Sets a return clause that also receives the final handler parameter.
    pub fn ret_param<P: Clone + 'static>(
        mut self,
        f: impl Fn(P, A) -> Sel<L, B> + 'static,
    ) -> Self {
        self.ret = Some(Rc::new(move |p, a| f(p.get::<P>(), a)));
        self
    }

    /// Finishes the handler.
    ///
    /// # Panics
    ///
    /// Panics if no return clause was set; use [`HandlerBuilder::ret`], or
    /// `build_identity` when `A = B`.
    pub fn build(self) -> Handler<L, A, B> {
        let ret = self.ret.unwrap_or_else(|| {
            panic!(
                "handler for {} has no return clause; call .ret(..) or .build_identity()",
                self.effect_name
            )
        });
        Handler {
            effect_id: self.effect_id,
            effect_name: self.effect_name,
            clauses: self.clauses,
            ret,
        }
    }
}

impl<L: Loss, A: Clone + 'static> HandlerBuilder<L, A, A> {
    /// Finishes a handler whose return clause is the identity
    /// (`return ↦ λx. x`, the paper's default).
    pub fn build_identity(self) -> Handler<L, A, A> {
        let me = HandlerBuilder {
            ret: self.ret.or_else(|| Some(Rc::new(|_p, a| Sel::pure(a)))),
            ..self
        };
        me.build()
    }
}

/// `with h handle body` for unit-parameter handlers.
pub fn handle<L: Loss, A: Clone + 'static, B: Clone + 'static>(
    h: &Handler<L, A, B>,
    body: Sel<L, A>,
) -> Sel<L, B> {
    handle_with(h, (), body)
}

/// `with h from p handle body` — parameterized handling.
pub fn handle_with<L, A, B, P>(h: &Handler<L, A, B>, p: P, body: Sel<L, A>) -> Sel<L, B>
where
    L: Loss,
    A: Clone + 'static,
    B: Clone + 'static,
    P: Clone + 'static,
{
    let h = Rc::new(HandlerRc {
        effect_id: h.effect_id,
        effect_name: h.effect_name,
        clauses: h.clauses.clone(),
        ret: Rc::clone(&h.ret),
    });
    let p0 = Value::new(p);
    Sel::from_fn(move |g: LossCont<L, B>| {
        // ordering: Relaxed — activation ids only need uniqueness,
        // which the RMW guarantees under any ordering.
        let activation = NEXT_ACTIVATION.fetch_add(1, Ordering::Relaxed);
        // The handled computation's loss continuation: a marker node that
        // the fold below interprets with the *current* parameter, giving
        // rule (S1)'s `λx. v_ret(v, x) ◮ g` with the live `v`.
        let g_inner: LossCont<L, A> = loss_cont(move |a: &A| {
            Eff::Op(
                OpCall::marker(activation, Value::new(a.clone())),
                node_cont(|v: Value| Eff::Pure(v.get::<L>())),
            )
        });
        let tree = body.run_with(g_inner);
        drive(&h, p0.clone(), activation, tree, &g)
    })
}

/// Internal `Rc`-shared handler payload (so closures can capture it).
struct HandlerRc<L, A, B> {
    effect_id: TypeId,
    effect_name: &'static str,
    clauses: HashMap<TypeId, RawClause<L, B>>,
    ret: RawRet<L, A, B>,
}

/// The handling fold — rules (R5), (R6), (S1) over the `Eff` tree.
fn drive<L, A, B>(
    h: &Rc<HandlerRc<L, A, B>>,
    p: Value,
    activation: u64,
    tree: Eff<(L, A)>,
    g: &LossCont<L, B>,
) -> Eff<(L, B)>
where
    L: Loss,
    A: Clone + 'static,
    B: Clone + 'static,
{
    match tree {
        // (R6): the computation returned a value — run the return clause;
        // the body's recorded loss is prepended (the action `r ·` in the
        // handler semantics of §5.3).
        Eff::Pure((r_body, a)) => {
            (h.ret)(p, a).run_with(Rc::clone(g)).map(move |(r_ret, b)| (r_body.combine(&r_ret), b))
        }
        Eff::Op(call, k) => {
            if call.is_marker(activation) {
                // Our own return-loss marker: the loss of result `a` is
                // `ret(p_now, a) ◮ g`.
                let a: A = call.arg.get();
                let ret_sel = (h.ret)(p.clone(), a);
                let loss_eff = then_loss(&ret_sel, g);
                let h2 = Rc::clone(h);
                let g2 = Rc::clone(g);
                loss_eff.bind(Rc::new(move |r: L| {
                    drive(&h2, p.clone(), activation, k(Value::new(r)), &g2)
                }))
            } else if call.effect_id == h.effect_id {
                let OpKind::User(op_id) = call.kind else {
                    unreachable!("marker nodes carry the private marker effect id")
                };
                let clause = match h.clauses.get(&op_id) {
                    Some(c) => Rc::clone(c),
                    None => panic!(
                        "handler for {} lacks a clause for operation {}",
                        h.effect_name, call.op_name
                    ),
                };
                // (R5): build the delimited and choice continuations.
                let resume: RawResume<L, B> = {
                    let h = Rc::clone(h);
                    let g = Rc::clone(g);
                    let k = Rc::clone(&k);
                    Rc::new(move |p2: Value, y: Value| {
                        let h = Rc::clone(&h);
                        let g = Rc::clone(&g);
                        let k = Rc::clone(&k);
                        // ⟨with h from p2 handle K[y]⟩_g: ignore the
                        // ambient continuation, use the captured g.
                        Sel::from_fn(move |_ambient| {
                            drive(&h, p2.clone(), activation, k(y.clone()), &g)
                        })
                    })
                };
                let choice: RawChoice<L> = {
                    let h = Rc::clone(h);
                    let g = Rc::clone(g);
                    let k = Rc::clone(&k);
                    Rc::new(move |p2: Value, y: Value| {
                        // (with h from p2 handle K[y]) ◮ g
                        let resumed = drive(&h, p2, activation, k(y), &g);
                        let g2 = Rc::clone(&g);
                        let eff: Eff<L> = resumed.bind(Rc::new(move |(r, b): (L, B)| {
                            let r = r.clone();
                            g2(&b).map(move |rb| r.combine(&rb))
                        }));
                        Sel::from_eff(eff)
                    })
                };
                clause(p, call.arg, choice, resume).run_with(Rc::clone(g))
            } else {
                // Not ours (another effect, or another handler's marker):
                // forward the node, re-handling on resumption with the
                // current parameter (the ψ clause of §5.3).
                let h = Rc::clone(h);
                let g = Rc::clone(g);
                Eff::Op(call, Rc::new(move |v| drive(&h, p.clone(), activation, k(v), &g)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sel::loss;
    use crate::{effect, perform};

    effect! {
        effect NDet {
            op Decide : () => bool;
        }
    }

    effect! {
        effect Counter {
            op Tick : () => u64;
        }
    }

    fn argmin_handler<B: Clone + 'static>() -> Handler<f64, B, B> {
        Handler::builder::<NDet>()
            .on::<Decide>(|(), l, k| {
                l.at(true).and_then(move |y| {
                    let l = l.clone();
                    let k = k.clone();
                    l.at(false).and_then(
                        move |z| {
                            if y <= z {
                                k.resume(true)
                            } else {
                                k.resume(false)
                            }
                        },
                    )
                })
            })
            .build_identity()
    }

    /// §2.3's pgm: b ← decide(); i ← if b {1} else {2}; loss(2i);
    /// if b {'a'} else {'b'}
    fn pgm() -> Sel<f64, char> {
        perform::<f64, Decide>(()).and_then(|b| {
            let i = if b { 1.0 } else { 2.0 };
            loss(2.0 * i).map(move |_| if b { 'a' } else { 'b' })
        })
    }

    #[test]
    fn pgm_argmin_picks_cheap_branch() {
        let (l, c) = handle(&argmin_handler(), pgm()).run_unwrap();
        assert_eq!(c, 'a');
        assert_eq!(l, 2.0);
    }

    #[test]
    fn pgm_argmax_picks_expensive_branch() {
        let h: Handler<f64, char, char> = Handler::builder::<NDet>()
            .on::<Decide>(|(), l, k| {
                l.at(true).and_then(move |y| {
                    let l = l.clone();
                    let k = k.clone();
                    l.at(false)
                        .and_then(move |z| if y >= z { k.resume(true) } else { k.resume(false) })
                })
            })
            .build_identity();
        let (l, c) = handle(&h, pgm()).run_unwrap();
        assert_eq!(c, 'b');
        assert_eq!(l, 4.0);
    }

    #[test]
    fn all_results_handler_matches_section_2_2() {
        let h: Handler<f64, bool, Vec<bool>> = Handler::builder::<NDet>()
            .on::<Decide>(|(), _l, k| {
                k.resume(true).and_then(move |ts: Vec<bool>| {
                    let k = k.clone();
                    k.resume(false).map(move |fs| {
                        let mut out = ts.clone();
                        out.extend(fs);
                        out
                    })
                })
            })
            .ret(|b| Sel::pure(vec![b]))
            .build();
        let prog = perform::<f64, Decide>(())
            .and_then(|x| perform::<f64, Decide>(()).map(move |y| x && y));
        let (_, all) = handle(&h, prog).run_unwrap();
        assert_eq!(all, vec![true, false, false, false]);
    }

    #[test]
    fn section_4_1_not_example() {
        // pgm = do y ← perform decide (); return (not y)  under the
        // all-results handler returns [False, True].
        let h: Handler<f64, bool, Vec<bool>> = Handler::builder::<NDet>()
            .on::<Decide>(|(), _l, k| {
                k.resume(true).and_then(move |ts: Vec<bool>| {
                    let k = k.clone();
                    k.resume(false).map(move |fs| {
                        let mut out = ts.clone();
                        out.extend(fs);
                        out
                    })
                })
            })
            .ret(|b| Sel::pure(vec![b]))
            .build();
        let prog = perform::<f64, Decide>(()).map(|y| !y);
        let (_, all) = handle(&h, prog).run_unwrap();
        assert_eq!(all, vec![false, true]);
    }

    #[test]
    fn choice_continuation_sees_losses_beyond_handler_scope() {
        // Handler scope ends after `pgm`, but the loss continuation is
        // global: losses recorded *after* the handled block influence the
        // choice when the handle is not localised.
        let prog = handle(&argmin_handler(), perform::<f64, Decide>(())).and_then(|b| {
            // after the handler: true costs 10, false costs 1
            loss(if b { 10.0 } else { 1.0 }).map(move |_| b)
        });
        let (l, b) = prog.run_unwrap();
        assert!(!b, "argmin should see the downstream loss and pick false");
        assert_eq!(l, 1.0);
    }

    #[test]
    fn local0_cuts_the_choice_continuation_scope() {
        // Localising the handled block makes downstream losses invisible:
        // both branches probe 0, tie broken towards true.
        let prog = handle(&argmin_handler(), perform::<f64, Decide>(()))
            .local0()
            .and_then(|b| loss(if b { 10.0 } else { 1.0 }).map(move |_| b));
        let (l, b) = prog.run_unwrap();
        assert!(b, "with a localised scope the tie is broken towards true");
        assert_eq!(l, 10.0);
    }

    #[test]
    fn parameterized_handler_threads_state() {
        // Tick returns the previous count; parameter counts invocations.
        let h: Handler<f64, Vec<u64>, Vec<u64>> = Handler::builder::<Counter>()
            .on_param::<Tick, u64>(|n, (), _l, k| k.resume_with(n + 1, n))
            .build_identity();
        let prog = perform::<f64, Tick>(()).and_then(|a| {
            perform::<f64, Tick>(())
                .and_then(move |b| perform::<f64, Tick>(()).map(move |c| vec![a, b, c]))
        });
        let (_, v) = handle_with(&h, 0_u64, prog).run_unwrap();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn ret_param_sees_final_parameter() {
        let h: Handler<f64, (), u64> = Handler::builder::<Counter>()
            .on_param::<Tick, u64>(|n, (), _l, k| k.resume_with(n + 1, n))
            .ret_param(|n: u64, ()| Sel::pure(n))
            .build();
        let prog = perform::<f64, Tick>(()).then(perform::<f64, Tick>(())).map(|_| ());
        let (_, n) = handle_with(&h, 0_u64, prog).run_unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn marker_uses_current_parameter_for_return_loss() {
        // The return clause records the parameter as a loss; a choice probe
        // made *after* a parameter update must see the updated value.
        let h: Handler<f64, (), ()> = Handler::builder::<Counter>()
            .on_param::<Tick, u64>(|n, (), l, k| {
                // probe the future loss, then resume with incremented n
                l.at_with(n + 1, n).and_then(move |probed| {
                    let k = k.clone();
                    // The probe runs the rest (no more ticks) and the
                    // return clause under parameter n+1, so sees n+1.
                    loss(probed).then(k.resume_with(n + 1, n))
                })
            })
            .ret_param(|n: u64, ()| loss(n as f64).map(|_| ()))
            .build();
        let prog = perform::<f64, Tick>(()).map(|_| ());
        let (l, ()) = handle_with(&h, 7_u64, prog).run_unwrap();
        // probe sees ret-loss 8 (recorded via loss(probed)); the real run
        // also records 8. total = 16.
        assert_eq!(l, 16.0);
    }

    #[test]
    fn nested_handlers_of_distinct_effects_forward() {
        effect! {
            effect Pick {
                op Choose : () => bool;
            }
        }
        let inner: Handler<f64, (bool, bool), (bool, bool)> = Handler::builder::<NDet>()
            .on::<Decide>(|(), l, k| {
                l.at(true).and_then(move |y| {
                    let (l, k) = (l.clone(), k.clone());
                    l.at(false)
                        .and_then(move |z| if y <= z { k.resume(true) } else { k.resume(false) })
                })
            })
            .build_identity();
        let outer: Handler<f64, (bool, bool), (bool, bool)> = Handler::builder::<Pick>()
            .on::<Choose>(|(), l, k| {
                l.at(true).and_then(move |y| {
                    let (l, k) = (l.clone(), k.clone());
                    l.at(false)
                        .and_then(move |z| if y >= z { k.resume(true) } else { k.resume(false) })
                })
            })
            .build_identity();
        // a ← choose (maximiser); b ← decide (minimiser);
        // loss(table[a][b]); (a, b) — §4.3's minimax, table [[5,3],[2,9]].
        let game = perform::<f64, Choose>(()).and_then(|a| {
            perform::<f64, Decide>(()).and_then(move |b| {
                let tbl = [[5.0, 3.0], [2.0, 9.0]];
                let al = usize::from(!a);
                let bl = usize::from(!b);
                loss(tbl[al][bl]).map(move |_| (a, b))
            })
        });
        let (l, play) = handle(&outer, handle(&inner, game)).run_unwrap();
        assert_eq!(play, (true, false)); // (Left, Right)
        assert_eq!(l, 3.0);
    }

    #[test]
    #[should_panic(expected = "does not belong to effect")]
    fn wrong_effect_clause_panics() {
        effect! {
            effect Other {
                op Nope : () => ();
            }
        }
        let _h: Handler<f64, (), ()> =
            Handler::builder::<NDet>().on::<Nope>(|(), _l, k| k.resume(())).build_identity();
    }

    #[test]
    #[should_panic(expected = "no return clause")]
    fn missing_return_clause_panics() {
        let _h: Handler<f64, bool, Vec<bool>> = Handler::builder::<NDet>().build();
    }

    #[test]
    fn discarding_the_continuation_discards_its_losses() {
        // Documented divergence from λC's eager loss labels (see module
        // docs of crate::sel): grid-search style handlers that never resume
        // drop the pre-op losses of the discarded future.
        let h: Handler<f64, f64, f64> = Handler::builder::<Counter>()
            .on::<Tick>(|(), l, _k| l.at(0).map(|probed| probed))
            .ret(Sel::pure)
            .build();
        let prog = loss(5.0).then(perform::<f64, Tick>(()).map(|n| n as f64));
        let (l, v) = handle(&h, prog).run_unwrap();
        // The 5.0 recorded before the tick rides in the writer position of
        // the suspended computation, so the *probe* sees it (resuming would
        // deliver it)…
        assert_eq!(v, 5.0);
        // …but since the clause never resumes, it is absent from the final
        // total — matching the Haskell library, whereas λC's small-step
        // semantics emits the 5.0 eagerly as a transition label.
        assert_eq!(l, 0.0);
    }
}
