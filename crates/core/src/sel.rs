//! The `Sel` monad — the library's central type (§4.2).
//!
//! ```text
//! newtype Sel r e a = Sel { unSel :: (a -> Eff r e r) -> Eff r e (r, a) }
//! ```
//!
//! A `Sel<L, A>` takes a *loss continuation* (what loss would the rest of
//! the program incur, given my result?) and produces an effectful
//! computation of a loss–value pair. The monad instance follows the
//! paper's Haskell instance verbatim: `bind` first runs `e` under the
//! *extended* loss continuation `λa. (f a) ⊲ g` (the `◮`/"then" operator),
//! then runs `f a` under `g`, and combines both recorded losses.
//!
//! ### Loss accounting vs. the small-step semantics
//!
//! λC's small-step semantics emits losses eagerly as transition labels;
//! this library (like the paper's Haskell implementation) carries them in
//! the writer position of the result pair. The two agree on every program
//! whose handlers resume each captured continuation along the returned
//! path; a handler that *discards* its continuation (the hyperparameter
//! tuner of §4.3) also discards losses recorded inside the discarded
//! future.

use crate::eff::Eff;
use crate::loss::Loss;
use crate::runtime::{loss_cont, SelRun};
use std::rc::Rc;

pub use crate::runtime::{zero_cont, LossCont};

/// The selection-with-effects monad (see [module docs](self)).
pub struct Sel<L, A> {
    run: SelRun<L, A>,
}

impl<L, A> Clone for Sel<L, A> {
    fn clone(&self) -> Self {
        Sel { run: Rc::clone(&self.run) }
    }
}

impl<L, A> std::fmt::Debug for Sel<L, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sel(<computation>)")
    }
}

/// The "then" operator `e ⊲ g` (the library form of `◮`): the total loss of
/// running `e` under `g` — its recorded loss plus `g`'s verdict on its
/// result. This is `R_W(e|g)` from §2.1 transplanted to `Eff`.
pub fn then_loss<L: Loss, A: Clone + 'static>(e: &Sel<L, A>, g: &LossCont<L, A>) -> Eff<L> {
    let g2 = Rc::clone(g);
    e.run_with(Rc::clone(g)).bind(Rc::new(move |(r, a): (L, A)| {
        let r = r.clone();
        g2(&a).map(move |rb| r.combine(&rb))
    }))
}

impl<L: Loss, A: Clone + 'static> Sel<L, A> {
    /// Wraps a raw `(a → Eff loss) → Eff (loss, a)` function. Advanced API;
    /// prefer [`Sel::pure`], [`crate::perform`], [`loss()`](crate::sel::loss) and
    /// combinators.
    pub fn from_fn(f: impl Fn(LossCont<L, A>) -> Eff<(L, A)> + 'static) -> Sel<L, A> {
        Sel { run: Rc::new(f) }
    }

    /// Lifts a loss-returning effect computation into `Sel` with zero
    /// recorded loss (used to expose choice-continuation probes as `Sel`
    /// computations the handler clause can sequence).
    pub fn from_eff(e: Eff<A>) -> Sel<L, A> {
        Sel::from_fn(move |_g| e.clone().map(|a| (L::zero(), a)))
    }

    /// The unit: ignores the loss continuation, records zero loss.
    pub fn pure(a: A) -> Sel<L, A> {
        Sel::from_fn(move |_g| Eff::Pure((L::zero(), a.clone())))
    }

    /// Runs under a loss continuation (the Haskell `unSel`).
    pub fn run_with(&self, g: LossCont<L, A>) -> Eff<(L, A)> {
        (self.run)(g)
    }

    /// Monadic bind (the paper's §4.2 instance).
    pub fn and_then<B: Clone + 'static>(&self, f: impl Fn(A) -> Sel<L, B> + 'static) -> Sel<L, B> {
        let me = self.clone();
        let f = Rc::new(f);
        Sel::from_fn(move |g: LossCont<L, B>| {
            let f1 = Rc::clone(&f);
            let g1 = Rc::clone(&g);
            // Extend the loss continuation: the loss of an `a` is the loss
            // of running `f a` under g (the ⊲ of the Haskell instance).
            let ext: LossCont<L, A> = loss_cont(move |a: &A| then_loss(&f1(a.clone()), &g1));
            let f2 = Rc::clone(&f);
            let g2 = Rc::clone(&g);
            me.run_with(ext).bind(Rc::new(move |(r1, a): (L, A)| {
                let r1 = r1.clone();
                f2(a).run_with(Rc::clone(&g2)).map(move |(r2, b)| (r1.combine(&r2), b))
            }))
        })
    }

    /// Functorial map.
    pub fn map<B: Clone + 'static>(&self, f: impl Fn(A) -> B + 'static) -> Sel<L, B> {
        self.and_then(move |a| Sel::pure(f(a)))
    }

    /// Sequences, discarding this computation's result.
    pub fn then<B: Clone + 'static>(&self, next: Sel<L, B>) -> Sel<L, B> {
        self.and_then(move |_| next.clone())
    }

    /// `⟨e⟩_0` — localises the loss continuation to zero: downstream losses
    /// become invisible to choices made inside, while losses *recorded*
    /// inside still escape. The paper finds this special case sufficient
    /// for all its examples (§3.1).
    pub fn local0(&self) -> Sel<L, A> {
        let me = self.clone();
        Sel::from_fn(move |_g| me.run_with(zero_cont()))
    }

    /// `⟨e⟩_g1` — localises to an arbitrary loss continuation.
    pub fn local_with(&self, g1: LossCont<L, A>) -> Sel<L, A> {
        let me = self.clone();
        Sel::from_fn(move |_g| me.run_with(Rc::clone(&g1)))
    }

    /// `reset e` — losses recorded inside do not escape; the loss
    /// continuation is left unchanged (rule S4 / the denotational clause of
    /// §5.3).
    pub fn reset(&self) -> Sel<L, A> {
        let me = self.clone();
        Sel::from_fn(move |g| me.run_with(g).map(|(_, a)| (L::zero(), a)))
    }

    /// `lreset` (§4.3) — both localisations at once: decisions inside see
    /// only their own losses, and those losses do not escape. Used to make
    /// loop iterations independent.
    pub fn lreset(&self) -> Sel<L, A> {
        self.local0().reset()
    }

    /// Transforms the loss recorded by this computation at this boundary
    /// (enclosing probes see the transformed loss too). `reset` is
    /// `map_loss(|_| L::zero())`; with a product monoid, zeroing a single
    /// component gives the *independent per-objective localising
    /// constructs* the paper's §6 proposes for multi-objective
    /// optimisation.
    pub fn map_loss(&self, f: impl Fn(&L) -> L + 'static) -> Sel<L, A> {
        let me = self.clone();
        let f = Rc::new(f);
        Sel::from_fn(move |g| {
            let f = Rc::clone(&f);
            me.run_with(g).map(move |(r, a)| (f(&r), a))
        })
    }

    /// Runs a fully-handled computation under the zero loss continuation,
    /// returning its recorded loss and result (the paper's `runSel`).
    ///
    /// # Errors
    ///
    /// [`UnhandledOp`] if an operation reaches the top level unhandled.
    pub fn run(&self) -> Result<(L, A), UnhandledOp> {
        match self.run_with(zero_cont()) {
            Eff::Pure(ra) => Ok(ra),
            Eff::Op(call, _) => Err(UnhandledOp { effect: call.effect_name, op: call.op_name }),
        }
    }

    /// Like [`Sel::run`] but panics on unhandled operations; convenient in
    /// examples and tests.
    ///
    /// # Panics
    ///
    /// Panics if an operation reaches the top level unhandled.
    pub fn run_unwrap(&self) -> (L, A) {
        self.run().expect("operation reached the top level unhandled")
    }
}

/// Records a loss (the built-in writer effect): ignores the loss
/// continuation and returns `()` with recorded loss `l` — rule (R4).
pub fn loss<L: Loss>(l: L) -> Sel<L, ()> {
    Sel::from_fn(move |_g| Eff::Pure((l.clone(), ())))
}

/// The error returned by [`Sel::run`] when an operation was never handled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnhandledOp {
    /// Effect name.
    pub effect: &'static str,
    /// Operation name.
    pub op: &'static str,
}

impl std::fmt::Display for UnhandledOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unhandled operation {}::{}", self.effect, self.op)
    }
}

impl std::error::Error for UnhandledOp {}

/// Haskell-style `do` notation for [`Sel`] computations:
///
/// ```
/// use selc::{sel, loss, Sel};
///
/// let prog: Sel<f64, i32> = sel! {
///     let x = Sel::pure(1);
///     let _ = loss(2.5);
///     let y = Sel::pure(x + 1);
///     Sel::pure(x + y)
/// };
/// assert_eq!(prog.run_unwrap(), (2.5, 3));
/// ```
#[macro_export]
macro_rules! sel {
    (let $p:pat = $e:expr; $($rest:tt)+) => {
        ($e).and_then(move |$p| $crate::sel!($($rest)+))
    };
    ($e:expr) => { $e };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_records_zero() {
        let s: Sel<f64, i32> = Sel::pure(5);
        assert_eq!(s.run_unwrap(), (0.0, 5));
    }

    #[test]
    fn loss_accumulates_through_bind() {
        let s = loss(1.0).and_then(|_| loss(2.0)).and_then(|_| Sel::pure(7));
        assert_eq!(s.run_unwrap(), (3.0, 7));
    }

    #[test]
    fn map_keeps_loss() {
        let s = loss(1.5).map(|_| "done");
        assert_eq!(s.run_unwrap(), (1.5, "done"));
    }

    #[test]
    fn reset_drops_losses() {
        let s = loss(9.0).then(Sel::pure(1)).reset();
        assert_eq!(s.run_unwrap(), (0.0, 1));
    }

    #[test]
    fn local0_keeps_losses() {
        let s = loss(9.0).then(Sel::pure(1)).local0();
        assert_eq!(s.run_unwrap(), (9.0, 1));
    }

    #[test]
    fn lreset_drops_losses_and_insulates() {
        let s = loss(9.0).then(Sel::pure(1)).lreset();
        assert_eq!(s.run_unwrap(), (0.0, 1));
    }

    #[test]
    fn then_loss_sums_recorded_and_continuation() {
        let s = loss(2.0).then(Sel::pure(3_i32));
        let g: LossCont<f64, i32> = Rc::new(|x: &i32| Eff::Pure(*x as f64));
        match then_loss(&s, &g) {
            Eff::Pure(l) => assert_eq!(l, 5.0),
            _ => panic!("expected pure"),
        }
    }

    #[test]
    fn bind_extends_loss_continuation() {
        // The first computation can *see* downstream losses through its
        // loss continuation. Verify by probing with a custom Sel that
        // reports its continuation's verdict as its loss.
        let probe: Sel<f64, i32> = Sel::from_fn(|g| {
            // select value 1 and record the downstream loss of 1 as loss
            g(&1).map(|l| (l, 1))
        });
        let s = probe.and_then(|x| loss(10.0).then(Sel::pure(x + 1)));
        // downstream of `probe` result 1: loss 10 is recorded, final result 2,
        // zero top-level continuation → probe records 10.
        assert_eq!(s.run_unwrap(), (20.0, 2)); // 10 (probe's record) + 10 (actual)
    }

    #[test]
    fn monad_laws_observed_through_run() {
        let f = |x: i32| loss(x as f64).then(Sel::pure(x + 1));
        let g = |x: i32| Sel::<f64, i32>::pure(x * 2);
        // left identity
        let lhs = Sel::pure(3).and_then(f);
        assert_eq!(lhs.run_unwrap(), f(3).run_unwrap());
        // right identity
        let m = f(4);
        assert_eq!(m.and_then(Sel::pure).run_unwrap(), m.run_unwrap());
        // associativity
        let lhs = m.and_then(f).and_then(g);
        let rhs = m.and_then(move |x| f(x).and_then(g));
        assert_eq!(lhs.run_unwrap(), rhs.run_unwrap());
    }

    #[test]
    fn unhandled_op_is_reported() {
        crate::effect! {
            effect Dummy {
                op Poke : () => ();
            }
        }
        let s: Sel<f64, ()> = crate::perform::<f64, Poke>(());
        let err = s.run().unwrap_err();
        assert_eq!(err.effect, "Dummy");
        assert_eq!(err.op, "Poke");
        assert_eq!(err.to_string(), "unhandled operation Dummy::Poke");
    }

    #[test]
    fn sel_macro_desugars() {
        let prog: Sel<f64, i32> = sel! {
            let x = Sel::pure(10);
            let _ = loss(1.0);
            Sel::pure(x * 2)
        };
        assert_eq!(prog.run_unwrap(), (1.0, 20));
    }
}
