//! Property-based laws for the library: the `Loss` monoid axioms, the
//! `Sel` monad laws observed through `run`, scoping laws for
//! `local0`/`reset`/`lreset`, and behavioural laws of handlers
//! (identity-like handlers are transparent; probing is pure).

use proptest::prelude::*;
use selc::{effect, handle, loss, perform, Handler, Loss, Sel};

effect! {
    effect NDet {
        op Decide : () => bool;
    }
}

/// A tiny program AST we can generate, interpret into `Sel`, and reason
/// about directly.
#[derive(Clone, Debug)]
enum P {
    Pure(i32),
    Loss(f64),
    Seq(Box<P>, Box<P>),
    Choose(Box<P>, Box<P>),
    Local(Box<P>),
    Reset(Box<P>),
}

fn arb_p() -> impl Strategy<Value = P> {
    let leaf =
        prop_oneof![(-10i32..10).prop_map(P::Pure), (0u32..8).prop_map(|l| P::Loss(l as f64)),];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| P::Choose(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| P::Local(Box::new(a))),
            inner.prop_map(|a| P::Reset(Box::new(a))),
        ]
    })
}

fn to_sel(p: &P) -> Sel<f64, i32> {
    match p {
        P::Pure(n) => Sel::pure(*n),
        P::Loss(l) => loss(*l).map(|_| 0),
        P::Seq(a, b) => {
            let (a, b) = (to_sel(a), to_sel(b));
            a.and_then(move |x| b.clone().map(move |y| x + y))
        }
        P::Choose(a, b) => {
            let (a, b) = (to_sel(a), to_sel(b));
            perform::<f64, Decide>(()).and_then(move |c| if c { a.clone() } else { b.clone() })
        }
        P::Local(a) => to_sel(a).local0(),
        P::Reset(a) => to_sel(a).reset(),
    }
}

fn argmin_h() -> Handler<f64, i32, i32> {
    Handler::builder::<NDet>()
        .on::<Decide>(|(), l, k| {
            l.at(true).and_then(move |y| {
                let (l, k) = (l.clone(), k.clone());
                l.at(false).and_then(move |z| if y <= z { k.resume(true) } else { k.resume(false) })
            })
        })
        .build_identity()
}

fn const_h(b: bool) -> Handler<f64, i32, i32> {
    Handler::builder::<NDet>().on::<Decide>(move |(), _l, k| k.resume(b)).build_identity()
}

/// Reference semantics of `P` under the const-`b` strategy.
fn reference(p: &P, b: bool) -> (f64, i32) {
    match p {
        P::Pure(n) => (0.0, *n),
        P::Loss(l) => (*l, 0),
        P::Seq(x, y) => {
            let (lx, vx) = reference(x, b);
            let (ly, vy) = reference(y, b);
            (lx + ly, vx + vy)
        }
        P::Choose(x, y) => reference(if b { x } else { y }, b),
        P::Local(x) => reference(x, b),
        P::Reset(x) => (0.0, reference(x, b).1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The f64, pair and vec Loss instances satisfy the monoid laws.
    #[test]
    fn loss_monoid_laws(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        prop_assert_eq!(a.combine(&f64::zero()), a);
        prop_assert_eq!(a.combine(&b), b.combine(&a));
        prop_assert!((a.combine(&b).combine(&c) - a.combine(&b.combine(&c))).abs() < 1e-9);

        let p1 = (a, b);
        let p2 = (c, a);
        prop_assert_eq!(p1.combine(&p2), p2.combine(&p1));
        prop_assert_eq!(p1.combine(&<(f64, f64)>::zero()), p1);

        let v1 = vec![a, b];
        let v2 = vec![c];
        prop_assert_eq!(v1.combine(&v2), v2.combine(&v1));
        prop_assert_eq!(Vec::<f64>::zero().combine(&v1), v1);
    }

    /// Monad laws, observed through run (the only observation we have).
    #[test]
    fn monad_laws(p in arb_p(), n in -5i32..5) {
        let f = move |x: i32| loss(x.unsigned_abs() as f64).map(move |_| x + n);
        let g = |x: i32| Sel::<f64, i32>::pure(x * 2);
        let m = handle(&argmin_h(), to_sel(&p));

        // left identity
        let lhs = Sel::pure(n).and_then(f);
        prop_assert_eq!(lhs.run_unwrap(), f(n).run_unwrap());

        // right identity
        prop_assert_eq!(m.and_then(Sel::pure).run_unwrap(), m.run_unwrap());

        // associativity
        let lhs = m.and_then(f).and_then(g);
        let rhs = m.and_then(move |x| f(x).and_then(g));
        prop_assert_eq!(lhs.run_unwrap(), rhs.run_unwrap());
    }

    /// Constant handlers agree with the reference semantics.
    #[test]
    fn const_handler_is_reference(p in arb_p(), b in any::<bool>()) {
        let got = handle(&const_h(b), to_sel(&p)).run_unwrap();
        prop_assert_eq!(got, reference(&p, b));
    }

    /// The argmin handler never does worse than either constant strategy
    /// (it optimises the total recorded loss over the whole future).
    #[test]
    fn argmin_is_no_worse_than_constant_strategies(p in arb_p()) {
        let (min_loss, _) = handle(&argmin_h(), to_sel(&p)).run_unwrap();
        let (lt, _) = handle(&const_h(true), to_sel(&p)).run_unwrap();
        let (lf, _) = handle(&const_h(false), to_sel(&p)).run_unwrap();
        prop_assert!(min_loss <= lt + 1e-9, "argmin {min_loss} > const-true {lt} on {:?}", p);
        prop_assert!(min_loss <= lf + 1e-9, "argmin {min_loss} > const-false {lf} on {:?}", p);
    }

    /// reset drops the recorded loss and keeps the value; lreset is
    /// local0 then reset; local0 preserves recorded losses.
    #[test]
    fn scoping_laws(p in arb_p()) {
        let m = handle(&argmin_h(), to_sel(&p));
        let (l0, v0) = m.run_unwrap();
        prop_assert_eq!(m.reset().run_unwrap(), (0.0, v0));
        prop_assert_eq!(m.local0().run_unwrap(), (l0, v0));
        let (lr, _) = m.lreset().run_unwrap();
        prop_assert_eq!(lr, 0.0);
        prop_assert_eq!(m.lreset().run_unwrap(), m.local0().reset().run_unwrap());
    }

    /// Probing through the choice continuation does not change the final
    /// outcome: a handler that probes and ignores behaves like const-true.
    #[test]
    fn probes_are_observationally_pure(p in arb_p()) {
        let probing: Handler<f64, i32, i32> = Handler::builder::<NDet>()
            .on::<Decide>(|(), l, k| {
                l.at(true).and_then(move |_| {
                    let (l, k) = (l.clone(), k.clone());
                    l.at(false).and_then(move |_| k.resume(true))
                })
            })
            .build_identity();
        let a = handle(&probing, to_sel(&p)).run_unwrap();
        let b = handle(&const_h(true), to_sel(&p)).run_unwrap();
        prop_assert_eq!(a, b);
    }

    /// Double handling: an inner handler consumes every Decide, so adding
    /// an outer NDet handler is a no-op.
    #[test]
    fn fully_handled_programs_ignore_outer_handlers(p in arb_p(), b in any::<bool>()) {
        let inner = handle(&const_h(b), to_sel(&p));
        let outer = handle(&argmin_h(), inner.clone());
        prop_assert_eq!(outer.run_unwrap(), inner.run_unwrap());
    }
}
