//! Multi-objective losses: §6 suggests "allowing users to locally vary
//! the reward monoid (e.g., to a product …, facilitating multi-objective
//! optimization)". The `Loss` trait already admits product monoids; these
//! tests drive handlers whose probes return *pairs* of losses and select
//! lexicographically or by weighted scalarisation — the prisoner's
//! dilemma machinery generalised.

use selc::{effect, handle, loss, perform, Choice, Handler, Sel};

effect! {
    effect Route {
        /// Choose one of `n` routes.
        op Pick : usize => usize;
    }
}

type L2 = (f64, f64); // (time, toll)

fn probe_all(l: &Choice<L2, usize>, n: usize) -> Sel<L2, Vec<L2>> {
    fn go(l: Choice<L2, usize>, n: usize, i: usize, acc: Vec<L2>) -> Sel<L2, Vec<L2>> {
        if i == n {
            return Sel::pure(acc);
        }
        l.at(i).and_then(move |li| {
            let mut acc = acc.clone();
            acc.push(li);
            go(l.clone(), n, i + 1, acc)
        })
    }
    go(l.clone(), n, 0, Vec::new())
}

/// Lexicographic: minimise time, break ties by toll.
fn lex_handler<B: Clone + 'static>() -> Handler<L2, B, B> {
    Handler::builder::<Route>()
        .on::<Pick>(|n, l, k| {
            probe_all(&l, n).and_then(move |ls| {
                let mut best = 0;
                for i in 1..ls.len() {
                    let better =
                        ls[i].0 < ls[best].0 || (ls[i].0 == ls[best].0 && ls[i].1 < ls[best].1);
                    if better {
                        best = i;
                    }
                }
                k.resume(best)
            })
        })
        .build_identity()
}

/// Weighted scalarisation: minimise `w·time + (1−w)·toll`.
fn weighted_handler<B: Clone + 'static>(w: f64) -> Handler<L2, B, B> {
    Handler::builder::<Route>()
        .on::<Pick>(move |n, l, k| {
            probe_all(&l, n).and_then(move |ls| {
                let score = |p: &L2| w * p.0 + (1.0 - w) * p.1;
                let mut best = 0;
                for i in 1..ls.len() {
                    if score(&ls[i]) < score(&ls[best]) {
                        best = i;
                    }
                }
                k.resume(best)
            })
        })
        .build_identity()
}

/// Three routes: (time, toll) = (10, 0), (10, 5), (2, 9).
fn trip() -> Sel<L2, usize> {
    perform::<L2, Pick>(3).and_then(|r| {
        let cost = [(10.0, 0.0), (10.0, 5.0), (2.0, 9.0)][r];
        loss(cost).map(move |_| r)
    })
}

#[test]
fn lexicographic_prefers_fast_then_cheap() {
    let ((time, toll), r) = handle(&lex_handler(), trip()).run_unwrap();
    assert_eq!(r, 2); // fastest
    assert_eq!((time, toll), (2.0, 9.0));
}

#[test]
fn weights_trade_time_for_toll() {
    // time-dominant weight picks route 2; toll-dominant picks route 0.
    let (_, fast) = handle(&weighted_handler(0.9), trip()).run_unwrap();
    assert_eq!(fast, 2);
    let (_, cheap) = handle(&weighted_handler(0.1), trip()).run_unwrap();
    assert_eq!(cheap, 0);
}

#[test]
fn pair_losses_accumulate_componentwise() {
    let prog = loss((1.0, 2.0)).then(loss((0.5, 0.5))).map(|_| ());
    assert_eq!(prog.run_unwrap().0, (1.5, 2.5));
}

#[test]
fn two_stage_trip_optimises_the_whole_journey() {
    // Stage 1 then stage 2; choosing greedily per-stage on time would pick
    // (fast, fast), but the lexicographic handler sees the *total* future:
    // stage-1 route 0 (slow) unlocks nothing here — totals are additive,
    // so the handler picks the per-stage lexicographic optimum of the
    // aggregate, which is fast+fast on time regardless of toll.
    let prog = trip().and_then(|r1| trip().map(move |r2| (r1, r2)));
    let ((time, toll), (r1, r2)) = handle(&lex_handler(), prog).run_unwrap();
    assert_eq!((r1, r2), (2, 2));
    assert_eq!((time, toll), (4.0, 18.0));
}

#[test]
fn vec_losses_work_as_well() {
    // The Vec<f64> monoid supports ad-hoc objective counts.
    let prog: Sel<Vec<f64>, ()> = loss(vec![1.0]).then(loss(vec![0.0, 2.0])).map(|_| ());
    assert_eq!(prog.run_unwrap().0, vec![1.0, 2.0]);
}

#[test]
fn map_loss_resets_a_single_objective() {
    // §6: "a product with independent localising constructs". Zero out the
    // toll component at a boundary; the time component still escapes.
    let prog = loss((3.0, 7.0)).map(|_| ()).map_loss(|l: &L2| (l.0, 0.0));
    assert_eq!(prog.run_unwrap().0, (3.0, 0.0));
}

#[test]
fn component_reset_changes_the_choice() {
    // Route 2 is fast but tolled. A handler minimising the *sum* picks
    // route 0 — unless the journey locally resets tolls, making route 2
    // win on the remaining (time) objective.
    let sum_handler = weighted_handler(0.5); // (time+toll)/2
    let plain = handle(&sum_handler, trip()).run_unwrap().1;
    assert_eq!(plain, 0); // 10+0 beats 2+9 and 10+5 on the sum

    let toll_free = trip().map_loss(|l: &L2| (l.0, 0.0));
    let subsidised = handle(&sum_handler, toll_free).run_unwrap();
    assert_eq!(subsidised.1, 2, "with tolls reset, the fast route wins");
    assert_eq!(subsidised.0, (2.0, 0.0));
}

#[test]
fn reset_is_map_loss_to_zero() {
    use selc::Loss;
    let a = loss((1.0, 2.0)).map(|_| 5).reset().run_unwrap();
    let b = loss((1.0, 2.0)).map(|_| 5).map_loss(|_| L2::zero()).run_unwrap();
    assert_eq!(a, b);
}
