//! The choice-continuation scope discipline (§2.3, §3.1): "the choice
//! continuation l has a useful different scope discipline, which is
//! delimited by a local construct, and otherwise global."
//!
//! These tests pin down each clause of that sentence for the library:
//! global by default, cut by `local0`, redirected by `local_with`
//! (the general `⟨e⟩_g`), loop iterations isolated by `lreset`.

use selc::{effect, handle, loss, perform, zero_cont, Handler, LossCont, Sel};
use std::rc::Rc;

effect! {
    effect NDet {
        op Decide : () => bool;
    }
}

fn argmin<B: Clone + 'static>() -> Handler<f64, B, B> {
    Handler::builder::<NDet>()
        .on::<Decide>(|(), l, k| {
            l.at(true).and_then(move |y| {
                let (l, k) = (l.clone(), k.clone());
                l.at(false).and_then(move |z| if y <= z { k.resume(true) } else { k.resume(false) })
            })
        })
        .build_identity()
}

/// One handled decide followed by a downstream loss depending on it.
fn choose_then_pay(pay_true: f64, pay_false: f64) -> Sel<f64, bool> {
    handle(&argmin(), perform::<f64, Decide>(()))
        .and_then(move |b| loss(if b { pay_true } else { pay_false }).map(move |_| b))
}

#[test]
fn scope_is_global_by_default() {
    // The handler's scope ends right after decide, but the probe sees the
    // downstream loss anyway.
    let (l, b) = choose_then_pay(10.0, 1.0).run_unwrap();
    assert!(!b);
    assert_eq!(l, 1.0);
    let (l, b) = choose_then_pay(1.0, 10.0).run_unwrap();
    assert!(b);
    assert_eq!(l, 1.0);
}

#[test]
fn local0_cuts_the_scope_at_the_handled_block() {
    // ⟨with h handle decide⟩_0 then pay: probes see 0 for both, tie → true.
    let prog = handle(&argmin(), perform::<f64, Decide>(()))
        .local0()
        .and_then(|b| loss(if b { 10.0 } else { 1.0 }).map(move |_| b));
    let (l, b) = prog.run_unwrap();
    assert!(b);
    assert_eq!(l, 10.0);
}

#[test]
fn local_with_installs_an_arbitrary_loss_continuation() {
    // The general ⟨e⟩_g: bias the choice with a custom continuation that
    // charges `true` 100 — even though the *recorded* downstream losses
    // would prefer true.
    let g: LossCont<f64, bool> =
        Rc::new(|b: &bool| selc::eff::Eff::Pure(if *b { 100.0 } else { 0.0 }));
    let prog = handle(&argmin(), perform::<f64, Decide>(()))
        .local_with(g)
        .and_then(|b| loss(if b { 1.0 } else { 50.0 }).map(move |_| b));
    let (l, b) = prog.run_unwrap();
    assert!(!b, "the custom continuation must override the real future");
    assert_eq!(l, 50.0);
}

#[test]
fn local_with_zero_equals_local0() {
    let a = handle(&argmin(), perform::<f64, Decide>(()))
        .local_with(zero_cont())
        .and_then(|b| loss(if b { 3.0 } else { 1.0 }).map(move |_| b));
    let b = handle(&argmin(), perform::<f64, Decide>(()))
        .local0()
        .and_then(|b| loss(if b { 3.0 } else { 1.0 }).map(move |_| b));
    assert_eq!(a.run_unwrap(), b.run_unwrap());
}

#[test]
fn lreset_isolates_loop_iterations() {
    // §4.3 applies lreset per iteration "so each iteration makes decisions
    // based on its own loss". Iteration i pays 1 for `true`, but a global
    // scope would let iteration 0's probe see iteration 1's huge
    // false-cost and distort the choice. With lreset, each iteration
    // simply picks `false` (cost 0 within its own scope? no—)…
    // Concretely: each round, true costs 1, false costs 2. Optimal per
    // round: true. Cross-round interference is removed by lreset.
    fn round() -> Sel<f64, bool> {
        handle(
            &argmin(),
            perform::<f64, Decide>(())
                .and_then(|b| loss(if b { 1.0 } else { 2.0 }).map(move |_| b)),
        )
    }
    fn loop_n(n: usize, acc: Vec<bool>) -> Sel<f64, Vec<bool>> {
        if n == 0 {
            return Sel::pure(acc);
        }
        round().lreset().and_then(move |b| {
            let mut acc = acc.clone();
            acc.push(b);
            loop_n(n - 1, acc)
        })
    }
    let (l, bs) = loop_n(4, Vec::new()).run_unwrap();
    assert_eq!(bs, vec![true; 4]);
    // every round's loss was dropped by reset
    assert_eq!(l, 0.0);
}

#[test]
fn without_lreset_losses_accumulate_across_iterations() {
    fn round() -> Sel<f64, bool> {
        handle(
            &argmin(),
            perform::<f64, Decide>(())
                .and_then(|b| loss(if b { 1.0 } else { 2.0 }).map(move |_| b)),
        )
    }
    fn loop_n(n: usize, acc: Vec<bool>) -> Sel<f64, Vec<bool>> {
        if n == 0 {
            return Sel::pure(acc);
        }
        round().and_then(move |b| {
            let mut acc = acc.clone();
            acc.push(b);
            loop_n(n - 1, acc)
        })
    }
    let (l, bs) = loop_n(4, Vec::new()).run_unwrap();
    // still all-true (losses are additive and independent), but recorded.
    assert_eq!(bs, vec![true; 4]);
    assert_eq!(l, 4.0);
}

#[test]
fn reset_inside_a_probed_future_hides_losses_from_the_probe() {
    // The probe evaluates the future; a reset region inside that future
    // contributes nothing to the probed loss.
    let prog = handle(
        &argmin(),
        perform::<f64, Decide>(()).and_then(|b| {
            let visible = loss(if b { 5.0 } else { 1.0 });
            let hidden = loss(if b { 0.0 } else { 100.0 }).reset();
            visible.then(hidden).map(move |_| b)
        }),
    );
    let (l, b) = prog.run_unwrap();
    // probes: true → 5 (hidden 0), false → 1 (hidden 100 invisible);
    // argmin picks false.
    assert!(!b);
    assert_eq!(l, 1.0);
}

#[test]
fn nested_local0_scopes_compose() {
    // inner local cuts inner probes; outer block still sees outer losses.
    let inner = handle(&argmin(), perform::<f64, Decide>(())).local0();
    let prog = handle(
        &argmin(),
        perform::<f64, Decide>(()).and_then(move |outer_b| {
            let inner = inner.clone();
            inner.and_then(move |inner_b| {
                loss(match (outer_b, inner_b) {
                    (true, _) => 1.0,
                    (false, _) => 2.0,
                })
                .map(move |_| (outer_b, inner_b))
            })
        }),
    );
    let (l, (outer_b, inner_b)) = prog.run_unwrap();
    assert!(outer_b, "outer choice sees its own loss table");
    assert!(inner_b, "inner choice is tie-broken to true by its local0");
    assert_eq!(l, 1.0);
}
