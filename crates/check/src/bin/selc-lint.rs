//! `selc-lint` — the workspace invariant linter.
//!
//! Usage: `selc-lint [workspace-root]` (default: the current directory).
//! Walks every `.rs` file outside `target/`, `vendor/`, and
//! test/bench/example trees, applies the rules in [`selc_check::lint`],
//! prints one line per finding, and exits non-zero if any fired.

use selc_check::lint::{lint_source, Finding, SKIP_DIRS};
use std::path::{Path, PathBuf};

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    // Deterministic walk order → deterministic report order.
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    let root = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let root = PathBuf::from(root);
    let mut files = Vec::new();
    if let Err(e) = collect_rust_files(&root, &mut files) {
        eprintln!("selc-lint: cannot walk {}: {e}", root.display());
        return std::process::ExitCode::from(2);
    }
    let mut findings: Vec<Finding> = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue; // non-UTF-8 or unreadable: not lintable source
        };
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let label = rel.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&label, &text));
        checked += 1;
    }
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("selc-lint: {checked} files clean");
        std::process::ExitCode::SUCCESS
    } else {
        println!("selc-lint: {} finding(s) across {checked} files", findings.len());
        std::process::ExitCode::FAILURE
    }
}
