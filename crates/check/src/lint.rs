//! The workspace invariant linter behind the `selc-lint` binary.
//!
//! A hand-rolled, dependency-free static pass: each source file is run
//! through a small line lexer that strips string literals and comments
//! (tracking multi-line strings, raw strings, and block comments across
//! lines), tags `#[cfg(test)]`-gated regions by brace depth, and then
//! applies three rules:
//!
//! * **`partial-cmp`** — `partial_cmp` and float-unsafe `sort_by`
//!   comparators are banned outside the allowlist. The workspace's
//!   determinism story (PR 5) rests on `total_cmp`: a `partial_cmp`
//!   that returns `None` for a NaN silently breaks the `(loss, index)`
//!   reduction's total order. The one sanctioned site is
//!   `autodiff::Dual`'s `PartialOrd` impl, which must forward to the
//!   primal's partial order to satisfy the trait's contract.
//! * **`ordering-comment`** — every explicit atomic memory ordering
//!   (`Ordering::{Relaxed, Acquire, Release, AcqRel, SeqCst}`) in
//!   non-test code must carry an `// ordering:` justification, either
//!   on the same line(s) or in the comment block directly above. The
//!   model checker only explores sequentially consistent schedules, so
//!   the written argument is the workspace's entire defence against
//!   weak-memory bugs.
//! * **`serve-no-panic`** — `.unwrap()` / `.expect(` are banned in
//!   `crates/serve` non-test code: the server survives poisoned locks
//!   and malformed frames by policy, and a stray unwrap turns a bad
//!   request into a dead worker.
//! * **`flow-uncertified-nonneg`** — mid-run abandonment is only sound
//!   when every emitted loss is non-negative, and `lambda_c::flow`
//!   produces machine-checked certificates of exactly that. Claiming it
//!   with a raw boolean — calling `assuming_nonneg_losses_unchecked`,
//!   or passing a literal `true` into a `*_unchecked(` search entry
//!   point — is flagged unless the line (or the two lines above it)
//!   carries a `// flow: certified` argument saying why the claim
//!   holds without a certificate value.
//!
//! Any rule can be waived for one line with `// selc-lint:
//! allow(<rule>)` on that line or the line above — the waiver is
//! greppable, which is the point.

/// Path suffixes (always `/`-separated) where `partial_cmp` is allowed.
const PARTIAL_CMP_ALLOWLIST: &[&str] = &["crates/autodiff/src/dual.rs"];

/// Directory names the workspace walk skips entirely: build output,
/// vendored code, and test/bench/example trees (the rules govern
/// production source).
pub const SKIP_DIRS: &[&str] =
    &["target", "vendor", ".git", "tests", "benches", "examples", "fixtures"];

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Which invariant a [`Finding`] violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    PartialCmp,
    OrderingComment,
    ServeNoPanic,
    FlowUncertifiedNonneg,
}

impl Rule {
    /// The rule's name as used in `selc-lint: allow(<name>)` waivers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::PartialCmp => "partial-cmp",
            Rule::OrderingComment => "ordering-comment",
            Rule::ServeNoPanic => "serve-no-panic",
            Rule::FlowUncertifiedNonneg => "flow-uncertified-nonneg",
        }
    }
}

/// One rule violation at one source line.
#[derive(Clone, Debug)]
pub struct Finding {
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.name(), self.message)
    }
}

/// Lexer state carried across lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LexState {
    Code,
    /// Inside `/* … */`, with nesting depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string (they continue across lines after a
    /// trailing backslash; tracking the state is still right either way
    /// because an unterminated string fails to compile).
    Str,
    /// Inside a raw string closed by `"` + this many `#`s.
    RawStr(u32),
}

/// One source line split into its code and `//` comment halves, with
/// string-literal contents blanked out of the code half.
struct Line {
    code: String,
    comment: String,
    is_test: bool,
}

/// Splits `line` into code and line-comment text under `state`,
/// returning the state the next line starts in. String and block-comment
/// contents are dropped (a `"` placeholder marks where a string sat).
fn strip_line(line: &str, mut state: LexState) -> (String, String, LexState) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < bytes.len() {
        match state {
            LexState::BlockComment(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state =
                        if depth == 1 { LexState::Code } else { LexState::BlockComment(depth - 1) };
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if bytes[i] == b'\\' {
                    i += 2; // an escape (or a line continuation at EOL)
                } else if bytes[i] == b'"' {
                    code.push('"');
                    state = LexState::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if bytes[i] == b'"' {
                    let h = hashes as usize;
                    if bytes[i + 1..].len() >= h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        code.push('"');
                        state = LexState::Code;
                        i += 1 + h;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            LexState::Code => {
                let c = bytes[i];
                if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    comment.push_str(&line[i + 2..]);
                    i = bytes.len();
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = LexState::BlockComment(1);
                    i += 2;
                } else if c == b'"' {
                    code.push('"');
                    state = LexState::Str;
                    i += 1;
                } else if (c == b'r' || c == b'b') && !prev_is_ident(&code) {
                    // Possible raw/byte string prefix: r"", r#""#, b"",
                    // br"", br#""#.
                    let mut j = i + 1;
                    let mut is_raw = c == b'r';
                    if c == b'b' && bytes.get(j) == Some(&b'r') {
                        is_raw = true;
                        j += 1;
                    }
                    let hash_start = j;
                    while bytes.get(j) == Some(&b'#') {
                        j += 1;
                    }
                    let hashes = (j - hash_start) as u32;
                    if bytes.get(j) == Some(&b'"') && (is_raw || hashes == 0) {
                        code.push('"');
                        state = if is_raw { LexState::RawStr(hashes) } else { LexState::Str };
                        i = j + 1;
                    } else {
                        code.push(c as char);
                        i += 1;
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal is 'x' or an
                    // escape; anything else is a lifetime tick.
                    if bytes.get(i + 1) == Some(&b'\\') {
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                        i = (j + 1).min(bytes.len());
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c as char);
                    i += 1;
                }
            }
        }
    }
    // A string whose line ends without a closing quote only truly
    // continues when the line ends in a backslash; otherwise it closed
    // on a quote we consumed or the file does not compile anyway.
    if state == LexState::Str && !line.trim_end().ends_with('\\') {
        state = LexState::Code;
    }
    (code, comment, state)
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Lexes `text` and tags `#[cfg(test)]` / `#[test]` regions by brace
/// depth.
fn lex(text: &str) -> Vec<Line> {
    let mut state = LexState::Code;
    let mut lines = Vec::new();
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_until_depth: Option<i64> = None;
    for raw in text.lines() {
        let (code, comment, next) = strip_line(raw, state);
        state = next;
        let was_test = test_until_depth.is_some();
        let pending_set = code.contains("cfg(test")
            || code.contains("cfg(all(test")
            || code.contains("cfg(any(test")
            || code.contains("#[test]");
        pending_test |= pending_set;
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_test && test_until_depth.is_none() {
                        test_until_depth = Some(depth);
                        pending_test = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_until_depth == Some(depth) {
                        test_until_depth = None;
                    }
                }
                ';' if pending_test && test_until_depth.is_none() && !code.contains("#[") => {
                    // `#[cfg(test)] use …;` — item ended without a block.
                    pending_test = false;
                }
                _ => {}
            }
        }
        let is_test = was_test || test_until_depth.is_some() || pending_set;
        lines.push(Line { code, comment, is_test });
    }
    lines
}

fn waived(lines: &[Line], idx: usize, rule: Rule) -> bool {
    let tag = format!("selc-lint: allow({})", rule.name());
    if lines[idx].comment.contains(&tag) {
        return true;
    }
    idx > 0 && lines[idx - 1].code.trim().is_empty() && lines[idx - 1].comment.contains(&tag)
}

/// Is there an `ordering:` justification in the contiguous comment
/// block directly above `idx`?
fn ordering_comment_above(lines: &[Line], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.code.trim().is_empty() && !l.comment.is_empty() {
            if l.comment.contains("ordering:") {
                return true;
            }
        } else {
            return false;
        }
    }
    false
}

/// Is there a `flow: certified` argument on this line's comment or in
/// one of the two lines directly above? (Two lines of grace: the
/// justification usually rides above a multi-line call.)
fn flow_certified_nearby(lines: &[Line], idx: usize) -> bool {
    let lo = idx.saturating_sub(2);
    (lo..=idx).any(|j| lines[j].comment.contains("flow: certified"))
}

/// Is there a standalone `true` token (not part of a wider identifier)
/// in `s`?
fn has_true_token(s: &str) -> bool {
    let b = s.as_bytes();
    let mut from = 0;
    while let Some(p) = s[from..].find("true") {
        let start = from + p;
        let end = start + 4;
        let ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
        let before_ok = start == 0 || !ident(b[start - 1]);
        let after_ok = end >= b.len() || !ident(b[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Does the `*_unchecked(` call opening on `idx` pass a literal `true`
/// before its matching close paren? Scans a bounded window of lines so
/// a formatted multi-line argument list is still covered.
fn unchecked_call_passes_true(lines: &[Line], idx: usize) -> bool {
    let open = match lines[idx].code.find("_unchecked(") {
        Some(p) => p + "_unchecked(".len(),
        None => return false,
    };
    let mut depth: u32 = 1;
    let mut span = String::new();
    for (j, line) in lines.iter().enumerate().skip(idx).take(12) {
        let start = if j == idx { open } else { 0 };
        for (k, c) in line.code.char_indices() {
            if k < start {
                continue;
            }
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return has_true_token(&span);
                    }
                }
                _ => {}
            }
            span.push(c);
        }
        span.push(' ');
    }
    // Unbalanced within the window: judge what was seen.
    has_true_token(&span)
}

fn has_explicit_ordering(code: &str) -> bool {
    ORDERING_VARIANTS.iter().any(|v| {
        let needle = format!("Ordering::{v}");
        code.contains(&needle)
    })
}

/// Lints one file's source. `path` should be workspace-relative with
/// `/` separators — the allowlist and the serve rule key on it.
#[must_use]
pub fn lint_source(path: &str, text: &str) -> Vec<Finding> {
    let lines = lex(text);
    let mut findings = Vec::new();
    let partial_cmp_allowed = PARTIAL_CMP_ALLOWLIST.iter().any(|s| path.ends_with(s));
    let in_serve = path.contains("crates/serve/");
    let finding = |idx: usize, rule: Rule, message: String| Finding {
        path: path.to_string(),
        line: idx + 1,
        rule,
        message,
    };

    for idx in 0..lines.len() {
        let code = lines[idx].code.as_str();

        // --- partial-cmp: determinism-unsafe float comparisons -------
        if !partial_cmp_allowed && !lines[idx].is_test && !waived(&lines, idx, Rule::PartialCmp) {
            if code.contains("partial_cmp(") {
                findings.push(finding(
                    idx,
                    Rule::PartialCmp,
                    "partial_cmp breaks the workspace's total-order determinism contract; use total_cmp \
                     (allowlisted exception: autodiff::Dual)"
                        .to_string(),
                ));
            }
            if code.contains(".sort_by(") || code.contains(".sort_unstable_by(") {
                // A float-safe comparator names total_cmp or a total
                // `.cmp(`; give multi-line closures two lines of grace.
                let window_ok = (idx..lines.len().min(idx + 3)).any(|j| {
                    lines[j].code.contains("total_cmp") || lines[j].code.contains(".cmp(")
                });
                if !window_ok {
                    findings.push(finding(
                        idx,
                        Rule::PartialCmp,
                        "sort_by without a visibly total comparator (total_cmp or Ord::cmp); \
                         floats sorted partially are nondeterministic under NaN"
                            .to_string(),
                    ));
                }
            }
        }

        // --- ordering-comment: justify every explicit ordering -------
        if !lines[idx].is_test && has_explicit_ordering(code) {
            // One justification covers a maximal run of consecutive
            // ordering-bearing lines (a single call formatted across
            // lines), via a same-line comment anywhere in the run or a
            // comment block above the run's first line.
            let run_start = (0..=idx)
                .rev()
                .take_while(|&j| has_explicit_ordering(&lines[j].code) && !lines[j].is_test)
                .last()
                .unwrap_or(idx);
            let run_end = (idx..lines.len())
                .take_while(|&j| has_explicit_ordering(&lines[j].code) && !lines[j].is_test)
                .last()
                .unwrap_or(idx);
            let justified = (run_start..=run_end).any(|j| lines[j].comment.contains("ordering:"))
                || ordering_comment_above(&lines, run_start)
                || (run_start..=run_end).any(|j| waived(&lines, j, Rule::OrderingComment));
            if !justified && idx == run_start {
                findings.push(finding(
                    idx,
                    Rule::OrderingComment,
                    "explicit atomic ordering without an `// ordering:` justification comment"
                        .to_string(),
                ));
            }
        }

        // --- flow-uncertified-nonneg: raw-boolean pruning claims -----
        // Definition lines (`fn …_unchecked`) are the sanctioned escape
        // hatch itself; everything else claiming non-negative losses
        // without a certificate value needs a written argument.
        if !lines[idx].is_test
            && !waived(&lines, idx, Rule::FlowUncertifiedNonneg)
            && !flow_certified_nearby(&lines, idx)
            && !code.contains("fn ")
        {
            if code.contains("assuming_nonneg_losses_unchecked") {
                findings.push(finding(
                    idx,
                    Rule::FlowUncertifiedNonneg,
                    "mid-run pruning asserted without a certificate; prefer with_nonneg_certificate \
                     (lambda_c::flow::analyze) or justify with `// flow: certified <why>`"
                        .to_string(),
                ));
            } else if code.contains("_unchecked(") && unchecked_call_passes_true(&lines, idx) {
                findings.push(finding(
                    idx,
                    Rule::FlowUncertifiedNonneg,
                    "literal `true` passed to an *_unchecked search entry point; pass the flow \
                     certificate instead or justify with `// flow: certified <why>`"
                        .to_string(),
                ));
            }
        }

        // --- serve-no-panic: the server must not unwrap --------------
        if in_serve && !lines[idx].is_test && !waived(&lines, idx, Rule::ServeNoPanic) {
            for needle in [".unwrap()", ".expect("] {
                if code.contains(needle) {
                    findings.push(finding(
                        idx,
                        Rule::ServeNoPanic,
                        format!(
                            "{needle} in crates/serve non-test code: the server handles poisoned locks and \
                             malformed input without panicking"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_strings_and_comments() {
        let lines = lex("let s = \"partial_cmp // not code\"; // trailing partial_cmp\nlet t = 1;");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].comment.contains("trailing partial_cmp"));
        assert_eq!(lines[1].code, "let t = 1;");
    }

    #[test]
    fn lexer_handles_raw_strings_and_block_comments() {
        let text =
            "let r = r#\"Ordering::SeqCst\"#;\n/* Ordering::SeqCst\nstill comment */ let x = 2;";
        let lines = lex(text);
        assert!(!lines[0].code.contains("SeqCst"));
        assert!(!lines[1].code.contains("SeqCst"));
        assert!(lines[2].code.contains("let x = 2;"));
    }

    #[test]
    fn lexer_tags_test_regions() {
        let text = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn prod2() {}";
        let lines = lex(text);
        assert!(!lines[0].is_test);
        assert!(lines[2].is_test && lines[3].is_test && lines[4].is_test);
        assert!(!lines[5].is_test);
    }

    #[test]
    fn char_literals_and_lifetimes_lex_as_code() {
        let lines = lex("fn f<'a>(c: char) -> bool { c == '\"' || c == '\\'' }");
        assert!(lines[0].code.contains("fn f<'a>"));
        // The quote chars must not open a string state.
        let lines2 = lex("let q = '\"';\nlet z = partial_cmp;");
        assert!(lines2[1].code.contains("partial_cmp"));
    }
}
