//! The sync facade every instrumented crate imports instead of
//! `std::sync`.
//!
//! In a normal build this module is nothing but re-exports — zero cost,
//! zero behaviour change. Under `--cfg selc_model` (set via `RUSTFLAGS`,
//! never by a cargo feature, so it can reach every crate in the graph at
//! once) the same names resolve to scheduler-instrumented facades that
//! call [`crate::model`] at every operation. The facades fall through to
//! plain `std` behaviour when the calling thread is not part of a live
//! model execution, so a `selc_model` build still runs the ordinary test
//! suite correctly.
//!
//! Instrumented ops ignore the `Ordering` the caller passes and execute
//! `SeqCst`: the checker explores sequentially consistent interleavings
//! only (see the soundness note on [`crate::model`]).

pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

#[cfg(not(selc_model))]
pub mod atomic {
    //! Re-exports of the real atomics (normal builds).
    pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(not(selc_model))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(selc_model)]
pub mod atomic {
    //! Scheduler-instrumented atomics (`--cfg selc_model` builds).
    pub use std::sync::atomic::Ordering;

    use crate::model;
    use std::sync::atomic as std_atomic;

    // ordering: every instrumented op runs SeqCst under the scheduler's
    // run token — the model checker explores sequentially consistent
    // schedules only, and the caller's ordering argument is recorded by
    // the `// ordering:` comment lint instead.
    const SC: Ordering = Ordering::SeqCst;

    macro_rules! model_atomic_common {
        ($name:ident, $std:ident, $raw:ty) => {
            /// Instrumented counterpart of the `std::sync::atomic` type
            /// of the same name: one scheduler decision point per op.
            pub struct $name {
                inner: std_atomic::$std,
            }

            impl $name {
                #[must_use]
                pub const fn new(v: $raw) -> Self {
                    Self { inner: std_atomic::$std::new(v) }
                }

                pub fn load(&self, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.load(SC)
                }

                pub fn store(&self, val: $raw, _order: Ordering) {
                    model::op_point();
                    self.inner.store(val, SC);
                }

                pub fn swap(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.swap(val, SC)
                }

                pub fn compare_exchange(
                    &self,
                    current: $raw,
                    new: $raw,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$raw, $raw> {
                    model::op_point();
                    self.inner.compare_exchange(current, new, SC, SC)
                }

                pub fn fetch_or(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.fetch_or(val, SC)
                }

                pub fn fetch_and(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.fetch_and(val, SC)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl ::std::fmt::Debug for $name {
                fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                    // No decision point: Debug is diagnostic, not a
                    // modelled access.
                    ::std::fmt::Debug::fmt(&self.inner.load(SC), f)
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $std:ident, $raw:ty) => {
            model_atomic_common!($name, $std, $raw);

            impl $name {
                pub fn fetch_add(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.fetch_add(val, SC)
                }

                pub fn fetch_sub(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.fetch_sub(val, SC)
                }

                pub fn fetch_min(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.fetch_min(val, SC)
                }

                pub fn fetch_max(&self, val: $raw, _order: Ordering) -> $raw {
                    model::op_point();
                    self.inner.fetch_max(val, SC)
                }

                /// One decision point for the whole read-modify-write:
                /// under the run token the loop cannot race, so modelling
                /// `fetch_update` as a single atomic step is exact.
                pub fn fetch_update<F>(
                    &self,
                    _set: Ordering,
                    _fetch: Ordering,
                    f: F,
                ) -> Result<$raw, $raw>
                where
                    F: FnMut($raw) -> Option<$raw>,
                {
                    model::op_point();
                    self.inner.fetch_update(SC, SC, f)
                }
            }
        };
    }

    model_atomic_common!(AtomicBool, AtomicBool, bool);
    model_atomic_int!(AtomicUsize, AtomicUsize, usize);
    model_atomic_int!(AtomicU64, AtomicU64, u64);
    model_atomic_int!(AtomicI64, AtomicI64, i64);
}

#[cfg(selc_model)]
pub use self::model_sync::{Condvar, Mutex, MutexGuard};

#[cfg(selc_model)]
mod model_sync {
    //! Scheduler-instrumented `Mutex`/`Condvar` (`--cfg selc_model`).
    //!
    //! Both wrap their `std` counterparts for storage and identify
    //! themselves to the scheduler by address. A model `lock` spins
    //! through `try_lock` + scheduler parking instead of blocking the OS
    //! thread, so the scheduler always knows who waits on what (that is
    //! what makes deadlocks detectable rather than hangs).

    use crate::model;
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        #[must_use]
        pub const fn new(t: T) -> Mutex<T> {
            Mutex { inner: std::sync::Mutex::new(t) }
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn addr(&self) -> usize {
            std::ptr::from_ref(self).cast::<()>() as usize
        }

        fn guard<'a>(&'a self, g: std::sync::MutexGuard<'a, T>, model: bool) -> MutexGuard<'a, T> {
            MutexGuard { inner: Some(g), lock: self, model }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            if !model::in_model() {
                return match self.inner.lock() {
                    Ok(g) => Ok(self.guard(g, false)),
                    Err(p) => Err(PoisonError::new(self.guard(p.into_inner(), false))),
                };
            }
            loop {
                model::op_point();
                match self.inner.try_lock() {
                    Ok(g) => return Ok(self.guard(g, true)),
                    Err(TryLockError::Poisoned(p)) => {
                        return Err(PoisonError::new(self.guard(p.into_inner(), true)))
                    }
                    Err(TryLockError::WouldBlock) => model::blocked_on_lock(self.addr()),
                }
            }
        }

        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            let in_model = model::in_model();
            if in_model {
                model::op_point();
            }
            match self.inner.try_lock() {
                Ok(g) => Ok(self.guard(g, in_model)),
                Err(TryLockError::Poisoned(p)) => Err(TryLockError::Poisoned(PoisonError::new(
                    self.guard(p.into_inner(), in_model),
                ))),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }

        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    pub struct MutexGuard<'a, T: ?Sized + 'a> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        lock: &'a Mutex<T>,
        /// Whether the guard was acquired inside a model execution (and
        /// must therefore tell the scheduler when it releases).
        model: bool,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("model mutex guard already released")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("model mutex guard already released")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            drop(self.inner.take());
            if self.model {
                model::lock_released(self.lock.addr());
            }
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            (**self).fmt(f)
        }
    }

    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        #[must_use]
        pub const fn new() -> Condvar {
            Condvar { inner: std::sync::Condvar::new() }
        }

        fn addr(&self) -> usize {
            std::ptr::from_ref(self).cast::<()>() as usize
        }

        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            if !guard.model || !model::in_model() {
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("model mutex guard already released");
                // The shim guard is now inert (inner taken, and we must
                // not report a model release that never happened).
                std::mem::forget(guard);
                return match self.inner.wait(std_guard) {
                    Ok(g) => Ok(lock.guard(g, false)),
                    Err(p) => Err(PoisonError::new(lock.guard(p.into_inner(), false))),
                };
            }
            let lock = guard.lock;
            model::op_point();
            // Dropping the guard releases the mutex and wakes its
            // waiters; the run token is still ours, so no notification
            // can slip in before we park — release + wait are atomic
            // under the scheduler, exactly like the real condvar.
            drop(guard);
            model::blocked_on_condvar(self.addr());
            lock.lock()
        }

        pub fn notify_one(&self) {
            if model::in_model() {
                model::op_point();
                model::condvar_notify(self.addr(), false);
            } else {
                self.inner.notify_one();
            }
        }

        pub fn notify_all(&self) {
            if model::in_model() {
                model::op_point();
                model::condvar_notify(self.addr(), true);
            } else {
                self.inner.notify_all();
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Condvar { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    //! These run under *both* cfgs: in a `selc_model` build they
    //! exercise the facades' fall-through path (no model execution is
    //! live, so every op must behave exactly like `std`).
    use super::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use super::{Condvar, Mutex, PoisonError};

    #[test]
    fn atomics_behave_like_std_outside_a_model_run() {
        let n = AtomicUsize::new(3);
        assert_eq!(n.fetch_add(4, Ordering::Relaxed), 3); // ordering: plain test traffic, no cross-thread protocol
        assert_eq!(n.load(Ordering::Relaxed), 7); // ordering: plain test traffic
        assert_eq!(n.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v + 1)), Ok(7)); // ordering: plain test traffic
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release); // ordering: plain test traffic
        assert!(b.load(Ordering::Acquire)); // ordering: plain test traffic
        let w = AtomicU64::new(9);
        assert_eq!(w.fetch_min(5, Ordering::Relaxed), 9); // ordering: plain test traffic
        assert_eq!(w.load(Ordering::Relaxed), 5); // ordering: plain test traffic
    }

    #[test]
    fn mutex_and_condvar_fall_through_to_std() {
        let m = Mutex::new(1usize);
        *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        assert_eq!(*m.lock().unwrap_or_else(PoisonError::into_inner), 2);
        assert!(m.try_lock().is_ok());
        let cv = Condvar::new();
        cv.notify_all(); // no waiters: a no-op either way
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|s| {
            let (m, cv) = (&m, &cv);
            s.spawn(move || {
                let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                tx.send(()).expect("receiver alive");
                while *g != 3 {
                    g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            });
            rx.recv().expect("waiter started");
            *m.lock().unwrap_or_else(PoisonError::into_inner) = 3;
            cv.notify_one();
        });
    }
}
