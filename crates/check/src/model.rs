//! A loom-style deterministic model checker (compiled only under
//! `--cfg selc_model`).
//!
//! # How it works
//!
//! [`check`] runs a closure once per *schedule*. Inside the closure,
//! threads are spawned with [`spawn`] and synchronise through the
//! [`crate::sync`] facades, whose instrumented ops call back into this
//! module at every atomic load/store/RMW, lock acquire/release, condvar
//! wait/notify, spawn, and join. Those callbacks are the *decision
//! points*: although every model thread is a real OS thread, exactly one
//! holds the run token at a time, and at each decision point the running
//! thread consults the schedule, picks the next thread to run, and hands
//! the token over through one process-wide condvar. The program under
//! test therefore executes under sequential consistency, one explicit
//! interleaving at a time.
//!
//! Schedules are explored depth-first over the vector of choices made at
//! each decision point. The default choice is "keep running the current
//! thread" (or the lowest-id runnable thread when the current one
//! blocked or finished), so the first schedule is the natural sequential
//! one; backtracking then re-runs the closure with a forced prefix that
//! diverges at the deepest decision with an untried alternative.
//! Context switches away from a still-runnable thread count as
//! *preemptions* and are bounded by [`Options::max_preemptions`] — the
//! CHESS result that almost all concurrency bugs surface within two
//! preemptions is what makes exhaustive exploration tractable.
//!
//! # Failure and replay
//!
//! A schedule fails when a model thread panics (an assertion in the test
//! body), when every live thread is blocked (deadlock), or when the step
//! bound trips (livelock). The whole run is then aborted — every other
//! model thread is unwound with a private panic payload — and [`check`]
//! panics with the failing schedule's **seed**: the full choice vector,
//! printed as dot-separated thread ids. [`check_with_seed`] re-runs that
//! exact interleaving, which is how a failure found in CI is reproduced
//! and stepped through locally.
//!
//! # Soundness trade
//!
//! The checker explores *sequentially consistent* interleavings only: it
//! ignores the `Ordering` arguments and runs every instrumented op as
//! `SeqCst`. It therefore proves algorithmic properties (no lost claims,
//! monotonicity, mutual exclusion, torn-read protocols under SC) but
//! cannot catch bugs that require a *weak-memory* reordering to
//! manifest. Those are covered the other way around: by the
//! `// ordering:` justification comments that `selc-lint` enforces at
//! every atomic site.

use std::cell::RefCell;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, PoisonError};

/// Exploration bounds for one [`check`] call.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Max context switches away from a runnable thread per schedule.
    pub max_preemptions: usize,
    /// Max schedules explored before declaring the search done.
    pub max_schedules: usize,
    /// Max decision points per schedule (livelock guard).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options { max_preemptions: 2, max_schedules: 20_000, max_steps: 20_000 }
    }
}

/// What a blocked thread is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Resource {
    /// A shim mutex, keyed by address.
    Lock(usize),
    /// A shim condvar notification, keyed by address.
    Notify(usize),
    /// Another model thread's completion.
    Thread(usize),
}

#[derive(Clone, Debug)]
enum State {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One scheduling decision: which threads could run, which would run by
/// default, and which was chosen. The log of these is the schedule.
#[derive(Clone, Debug)]
struct Decision {
    enabled: Vec<usize>,
    default: usize,
    chosen: usize,
    /// Was the *running* thread still runnable here? (If so, choosing
    /// anything but the default is a preemption.)
    running_enabled: bool,
}

impl Decision {
    fn preempting(&self) -> bool {
        self.running_enabled && self.chosen != self.default
    }
}

struct Sched {
    states: Vec<State>,
    /// Id of the thread holding the run token (`usize::MAX` = none yet).
    current: usize,
    /// Threads not yet finished.
    active: usize,
    steps: usize,
    log: Vec<Decision>,
    /// Forced choices for the first `prefix.len()` decisions.
    prefix: Vec<usize>,
    failure: Option<String>,
    aborted: bool,
    opts: Options,
}

struct Exec {
    sched: OsMutex<Sched>,
    cv: OsCondvar,
}

/// Panic payload used to unwind model threads after a failure elsewhere.
struct Abort;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Exec>, usize)> {
    if std::thread::panicking() {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

/// Is the calling thread a live model thread? Shim ops fall through to
/// plain `std` behaviour when this is false, which is what makes a
/// `--cfg selc_model` build safe to run ordinary (non-model) tests in.
pub(crate) fn in_model() -> bool {
    ctx().is_some()
}

fn lock(exec: &Exec) -> OsGuard<'_, Sched> {
    exec.sched.lock().unwrap_or_else(PoisonError::into_inner)
}

fn enabled_of(s: &Sched) -> Vec<usize> {
    s.states
        .iter()
        .enumerate()
        .filter(|(_, st)| matches!(st, State::Runnable))
        .map(|(i, _)| i)
        .collect()
}

/// Records one decision and hands the token to the chosen thread.
/// `running_enabled` says whether the thread making the decision could
/// itself continue (false at block/finish points).
fn choose(
    s: &mut Sched,
    default: usize,
    enabled: Vec<usize>,
    running_enabled: bool,
) -> Result<usize, String> {
    let idx = s.log.len();
    let chosen = match s.prefix.get(idx) {
        Some(&c) if enabled.contains(&c) => c,
        Some(&c) => {
            return Err(format!(
                "schedule divergence at decision {idx}: forced thread {c} not in enabled set {enabled:?}"
            ))
        }
        None => default,
    };
    s.log.push(Decision { enabled, default, chosen, running_enabled });
    s.current = chosen;
    Ok(chosen)
}

/// Sets the failure, wakes everyone, and unwinds the calling thread.
fn abort_with(exec: &Exec, mut s: OsGuard<'_, Sched>, msg: String) -> ! {
    s.failure.get_or_insert(msg);
    s.aborted = true;
    exec.cv.notify_all();
    drop(s);
    panic_any(Abort);
}

/// Waits until the calling thread holds the token again (or the run
/// aborted, in which case it unwinds).
fn wait_turn(exec: &Exec, mut s: OsGuard<'_, Sched>, me: usize) {
    loop {
        if s.aborted {
            drop(s);
            panic_any(Abort);
        }
        if s.current == me && matches!(s.states[me], State::Runnable) {
            return;
        }
        s = exec.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
}

fn bump_step(s: &mut OsGuard<'_, Sched>) -> Option<String> {
    s.steps += 1;
    if s.steps > s.opts.max_steps {
        return Some(format!(
            "exceeded {} decision points in one schedule (possible livelock)",
            s.opts.max_steps
        ));
    }
    None
}

/// The per-op decision point every instrumented shim op calls first.
pub(crate) fn op_point() {
    let Some((exec, me)) = ctx() else { return };
    let mut s = lock(&exec);
    if s.aborted {
        drop(s);
        panic_any(Abort);
    }
    if let Some(msg) = bump_step(&mut s) {
        abort_with(&exec, s, msg);
    }
    let enabled = enabled_of(&s);
    if let Err(msg) = choose(&mut s, me, enabled, true) {
        abort_with(&exec, s, msg);
    }
    exec.cv.notify_all();
    wait_turn(&exec, s, me);
}

/// Blocks the calling thread on `r` and schedules someone else. Returns
/// once a waker flipped this thread back to runnable *and* the schedule
/// picked it.
fn block_on(r: Resource) {
    let Some((exec, me)) = ctx() else { return };
    let mut s = lock(&exec);
    if s.aborted {
        drop(s);
        panic_any(Abort);
    }
    if let Some(msg) = bump_step(&mut s) {
        abort_with(&exec, s, msg);
    }
    s.states[me] = State::Blocked(r);
    let enabled = enabled_of(&s);
    if enabled.is_empty() {
        abort_with(
            &exec,
            s,
            format!("deadlock: thread {me} blocked on {r:?} with every other live thread blocked"),
        );
    }
    let default = enabled[0];
    if let Err(msg) = choose(&mut s, default, enabled, false) {
        abort_with(&exec, s, msg);
    }
    exec.cv.notify_all();
    wait_turn(&exec, s, me);
}

/// Shim hook: lock unavailable — park until someone releases it.
pub(crate) fn blocked_on_lock(addr: usize) {
    block_on(Resource::Lock(addr));
}

/// Shim hook: a lock was released — its waiters become runnable. Called
/// from guard drops, including during unwinding, so it never panics.
pub(crate) fn lock_released(addr: usize) {
    let Some((exec, _)) = CURRENT.with(|c| c.borrow().clone()) else { return };
    let mut s = lock(&exec);
    for st in s.states.iter_mut() {
        if matches!(st, State::Blocked(Resource::Lock(a)) if *a == addr) {
            *st = State::Runnable;
        }
    }
    exec.cv.notify_all();
}

/// Shim hook: park on a condvar. The caller has already released the
/// protecting mutex; with the token still held, no notification can
/// slip in between (release + wait are atomic under the scheduler).
pub(crate) fn blocked_on_condvar(addr: usize) {
    block_on(Resource::Notify(addr));
}

/// Shim hook: wake one (lowest-id, deterministically) or all waiters.
pub(crate) fn condvar_notify(addr: usize, all: bool) {
    let Some((exec, _)) = ctx() else { return };
    let mut s = lock(&exec);
    for st in s.states.iter_mut() {
        if matches!(st, State::Blocked(Resource::Notify(a)) if *a == addr) {
            *st = State::Runnable;
            if !all {
                break;
            }
        }
    }
    exec.cv.notify_all();
}

/// Marks `me` finished, wakes joiners, and hands the token on (or ends
/// the run). Never panics: it runs at the very end of a thread body,
/// including after an abort.
fn finish(exec: &Exec, me: usize) {
    let mut s = lock(exec);
    s.states[me] = State::Finished;
    s.active -= 1;
    for st in s.states.iter_mut() {
        if matches!(st, State::Blocked(Resource::Thread(t)) if *t == me) {
            *st = State::Runnable;
        }
    }
    if s.aborted || s.active == 0 {
        exec.cv.notify_all();
        return;
    }
    let enabled = enabled_of(&s);
    if enabled.is_empty() {
        s.failure.get_or_insert("deadlock: every remaining thread is blocked".to_string());
        s.aborted = true;
        exec.cv.notify_all();
        return;
    }
    let default = enabled[0];
    if let Err(msg) = choose(&mut s, default, enabled, false) {
        s.failure.get_or_insert(msg);
        s.aborted = true;
    }
    exec.cv.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked with a non-string payload".to_string()
    }
}

/// Waits for the first scheduling of a freshly spawned thread. Returns
/// false when the run aborted before this thread ever ran.
fn wait_first(exec: &Exec, me: usize) -> bool {
    let mut s = lock(exec);
    loop {
        if s.aborted {
            return false;
        }
        if s.current == me && matches!(s.states[me], State::Runnable) {
            return true;
        }
        s = exec.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Runs `body` as model thread `id`: waits to be scheduled, catches
/// panics (turning non-[`Abort`] ones into run failures), and finishes.
fn thread_main<T: Send + 'static>(
    exec: Arc<Exec>,
    id: usize,
    slot: Arc<OsMutex<Option<T>>>,
    body: impl FnOnce() -> T,
) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
    if wait_first(&exec, id) {
        match catch_unwind(AssertUnwindSafe(body)) {
            Ok(v) => {
                *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
            }
            Err(payload) => {
                if payload.downcast_ref::<Abort>().is_none() {
                    let msg = format!("thread {id} panicked: {}", panic_message(payload.as_ref()));
                    let mut s = lock(&exec);
                    s.failure.get_or_insert(msg);
                    s.aborted = true;
                    exec.cv.notify_all();
                }
            }
        }
    }
    finish(&exec, id);
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// A handle to a model thread spawned with [`spawn`].
pub struct JoinHandle<T> {
    exec: Arc<Exec>,
    id: usize,
    slot: Arc<OsMutex<Option<T>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T: Send + 'static> JoinHandle<T> {
    /// Waits (as a scheduling decision) for the thread to finish and
    /// returns its value. Panics (unwinding the schedule) if the run was
    /// aborted by a failure elsewhere.
    pub fn join(mut self) -> T {
        op_point();
        loop {
            {
                let s = lock(&self.exec);
                if s.aborted {
                    drop(s);
                    panic_any(Abort);
                }
                if matches!(s.states[self.id], State::Finished) {
                    break;
                }
            }
            block_on(Resource::Thread(self.id));
        }
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        self.slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("finished model thread left no value")
    }
}

/// Spawns a new model thread inside a [`check`] body. Panics if called
/// from outside a model execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (exec, _me) = ctx().expect("model::spawn called outside a model execution");
    let id = {
        let mut s = lock(&exec);
        s.states.push(State::Runnable);
        s.active += 1;
        s.states.len() - 1
    };
    let slot: Arc<OsMutex<Option<T>>> = Arc::new(OsMutex::new(None));
    let (exec2, slot2) = (Arc::clone(&exec), Arc::clone(&slot));
    let os = std::thread::Builder::new()
        .name(format!("selc-model-{id}"))
        .spawn(move || thread_main(exec2, id, slot2, f))
        .expect("spawn model OS thread");
    // Spawning is itself a decision point: the DFS may run the child
    // immediately (a preemption) or keep running the parent.
    op_point();
    JoinHandle { exec, id, slot, os: Some(os) }
}

struct RunOutcome {
    log: Vec<Decision>,
    failure: Option<String>,
}

/// Executes exactly one schedule: the decisions in `prefix` are forced,
/// everything beyond follows the defaults.
fn run_one<F>(body: &Arc<F>, prefix: Vec<usize>, opts: Options) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Exec {
        sched: OsMutex::new(Sched {
            states: vec![State::Runnable],
            current: usize::MAX,
            active: 1,
            steps: 0,
            log: Vec::new(),
            prefix,
            failure: None,
            aborted: false,
            opts,
        }),
        cv: OsCondvar::new(),
    });
    let slot: Arc<OsMutex<Option<()>>> = Arc::new(OsMutex::new(None));
    let (exec2, slot2, body2) = (Arc::clone(&exec), Arc::clone(&slot), Arc::clone(body));
    let root = std::thread::Builder::new()
        .name("selc-model-0".to_string())
        .spawn(move || thread_main(exec2, 0, slot2, move || body2()))
        .expect("spawn model root thread");
    {
        let mut s = lock(&exec);
        s.current = 0;
        exec.cv.notify_all();
    }
    {
        let mut s = lock(&exec);
        while s.active > 0 {
            s = exec.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let _ = root.join();
    let s = lock(&exec);
    RunOutcome { log: s.log.clone(), failure: s.failure.clone() }
}

/// The seed of a schedule: its choice vector as dot-separated thread
/// ids (empty string = the all-defaults schedule).
fn encode_seed(log: &[Decision]) -> String {
    log.iter().map(|d| d.chosen.to_string()).collect::<Vec<_>>().join(".")
}

fn parse_seed(seed: &str) -> Vec<usize> {
    seed.split('.')
        .filter(|p| !p.is_empty())
        .map(|p| p.parse().unwrap_or_else(|_| panic!("malformed model seed component {p:?}")))
        .collect()
}

/// The DFS step: the deepest decision with an untried alternative that
/// stays within the preemption bound, as a new forced prefix.
fn next_prefix(log: &[Decision], max_preemptions: usize) -> Option<Vec<usize>> {
    for i in (0..log.len()).rev() {
        let d = &log[i];
        let preemptions_before = log[..i].iter().filter(|d| d.preempting()).count();
        // Alternatives are ordered default-first, then by thread id.
        let mut order = vec![d.default];
        order.extend(d.enabled.iter().copied().filter(|&t| t != d.default));
        let pos = order
            .iter()
            .position(|&t| t == d.chosen)
            .expect("chosen choice is always in the alternative order");
        for &cand in &order[pos + 1..] {
            let cand_preempts = usize::from(d.running_enabled && cand != d.default);
            if preemptions_before + cand_preempts <= max_preemptions {
                let mut p: Vec<usize> = log[..i].iter().map(|d| d.chosen).collect();
                p.push(cand);
                return Some(p);
            }
        }
    }
    None
}

/// Explores every schedule of `body` (up to the bounds in `opts`),
/// depth-first. Panics on the first failing schedule with a replayable
/// seed in the message; returns normally when the bounded exploration
/// finds no failure.
pub fn check<F>(name: &str, opts: Options, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let body = Arc::new(body);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let out = run_one(&body, prefix, opts);
        schedules += 1;
        if let Some(msg) = out.failure {
            let seed = encode_seed(&out.log);
            panic!(
                "model check '{name}' failed on schedule {schedules}: {msg}\n  \
                 seed: \"{seed}\"\n  \
                 replay: selc_check::model::check_with_seed(\"{name}\", \"{seed}\", opts, body)"
            );
        }
        if schedules >= opts.max_schedules {
            return;
        }
        match next_prefix(&out.log, opts.max_preemptions) {
            Some(p) => prefix = p,
            None => return,
        }
    }
}

/// Replays exactly one schedule from a seed produced by a failing
/// [`check`]. Panics if that schedule fails (the expected outcome when
/// reproducing a bug); returns normally if it now passes.
pub fn check_with_seed<F>(name: &str, seed: &str, opts: Options, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let out = run_one(&Arc::new(body), parse_seed(seed), opts);
    if let Some(msg) = out.failure {
        panic!("model check '{name}' failed replaying seed \"{seed}\": {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::{Condvar, Mutex};

    /// Pulls the seed out of a failing check's panic message.
    fn failing_seed(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("check was expected to fail");
        let msg = panic_message(payload.as_ref());
        let start = msg.find("seed: \"").expect("failure message carries a seed") + 7;
        let end = msg[start..].find('"').expect("seed is quoted") + start;
        msg[start..end].to_string()
    }

    fn racy_increment() {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                spawn(move || {
                    // Deliberately non-atomic increment: load, then store.
                    let v = n.load(Ordering::SeqCst); // ordering: model test fixture; the checker runs everything SeqCst anyway
                    n.store(v + 1, Ordering::SeqCst); // ordering: model test fixture
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost"); // ordering: model test fixture
    }

    #[test]
    fn finds_the_lost_update_and_the_seed_replays() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("lost-update", Options::default(), racy_increment);
        }));
        let seed = failing_seed(result);
        // The seed replays to the same failure…
        let replay = catch_unwind(AssertUnwindSafe(|| {
            check_with_seed("lost-update", &seed, Options::default(), racy_increment);
        }));
        assert!(replay.is_err(), "seed {seed:?} must reproduce the failure");
        // …deterministically, twice.
        let replay2 = catch_unwind(AssertUnwindSafe(|| {
            check_with_seed("lost-update", &seed, Options::default(), racy_increment);
        }));
        assert!(replay2.is_err());
    }

    #[test]
    fn the_lost_update_needs_a_preemption() {
        // With zero preemptions allowed, threads only switch when they
        // block or finish, so the torn read/write pair cannot interleave
        // and the (buggy) program looks correct: bounding is a trade.
        check(
            "lost-update-bound-0",
            Options { max_preemptions: 0, ..Options::default() },
            racy_increment,
        );
    }

    #[test]
    fn atomic_rmw_increments_are_never_lost() {
        check("fetch-add", Options::default(), || {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst); // ordering: model test fixture
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2); // ordering: model test fixture
        });
    }

    #[test]
    fn mutexes_give_mutual_exclusion() {
        check("mutex-increment", Options::default(), || {
            let m = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    spawn(move || {
                        let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*m.lock().unwrap_or_else(PoisonError::into_inner), 2);
        });
    }

    #[test]
    fn lock_order_inversion_is_reported_as_deadlock() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("deadlock", Options::default(), || {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = spawn(move || {
                    let _ga = a2.lock().unwrap_or_else(PoisonError::into_inner);
                    let _gb = b2.lock().unwrap_or_else(PoisonError::into_inner);
                });
                {
                    let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
                }
                h.join();
            });
        }));
        let payload = result.expect_err("the inverted lock order must deadlock in some schedule");
        assert!(panic_message(payload.as_ref()).contains("deadlock"));
    }

    #[test]
    fn condvar_handoff_is_never_lost() {
        check("condvar-handoff", Options::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let h = spawn(move || {
                let (m, cv) = &*pair2;
                let mut ready = m.lock().unwrap_or_else(PoisonError::into_inner);
                while !*ready {
                    ready = cv.wait(ready).unwrap_or_else(PoisonError::into_inner);
                }
            });
            {
                let (m, cv) = &*pair;
                *m.lock().unwrap_or_else(PoisonError::into_inner) = true;
                cv.notify_one();
            }
            h.join();
        });
    }

    #[test]
    fn passing_checks_return_quietly_and_empty_seeds_parse() {
        check("trivial", Options::default(), || {});
        assert_eq!(parse_seed(""), Vec::<usize>::new());
        assert_eq!(parse_seed("0.2.1"), vec![0, 2, 1]);
    }
}
