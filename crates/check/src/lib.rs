//! Correctness tooling for the selection-monad workspace.
//!
//! Two halves, one crate:
//!
//! * [`sync`] + [`model`]: a dependency-free, loom-style deterministic
//!   model checker. Concurrent code imports its atomics, mutexes, and
//!   condvars through [`sync`], which re-exports `std::sync` in normal
//!   builds and swaps in scheduler-instrumented facades when the crate
//!   graph is compiled with `--cfg selc_model`. Under that cfg,
//!   [`model::check`] runs a closure over *every* thread interleaving up
//!   to a preemption bound, serialising real OS threads through a
//!   token-passing DFS scheduler. A failing interleaving panics with a
//!   seed that [`model::check_with_seed`] replays exactly.
//!
//! * [`lint`]: a hand-rolled static pass (`selc-lint` binary) that keeps
//!   the workspace's determinism and robustness invariants from
//!   regressing: no `partial_cmp`/untotal float sorts outside the
//!   sanctioned `autodiff::Dual` site, a written justification for every
//!   atomic memory ordering, and no `unwrap()`/`expect()` in
//!   `crates/serve` non-test code.
//!
//! The crate intentionally depends on nothing, so every other crate can
//! depend on it without cycles.

pub mod lint;
#[cfg(selc_model)]
pub mod model;
pub mod sync;
