//! Mutation regression tests: the model checker must *catch* known
//! historical bugs when they are deliberately reintroduced, and the
//! failing interleaving's seed must replay deterministically.
//!
//! Two mutants are reproduced locally (the real code is fixed; copying
//! the buggy shape here keeps the workspace honest without shipping the
//! bug):
//!
//! * `MutantQueue` — the pre-saturation work queue cursor: a bare
//!   `fetch_add` that wraps past `usize::MAX` and re-issues index 0 (the
//!   bug the saturating `fetch_update` in `selc_engine::queue` fixed).
//! * `MutantBound` — a shared best-loss bound whose domination test is
//!   non-strict (`>=` instead of `>`): a candidate *tying* the best is
//!   pruned, which breaks the deterministic `(loss, index)` tie-break.
//!
//! Only meaningful under the model cfg:
//! `RUSTFLAGS="--cfg selc_model" cargo test -p selc-check --test mutations`.
#![cfg(selc_model)]

use selc_check::model::{check, check_with_seed, spawn, Options};
use selc_check::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

// ordering: SeqCst throughout this file — mutant fixtures run only under
// the model checker, which interprets every access sequentially
// consistently anyway; the strength is not load-bearing.
const SC: Ordering = Ordering::SeqCst;

/// Runs `body` under the checker expecting a failure, and returns the
/// seed the failure report names.
fn failing_seed(name: &'static str, body: impl Fn() + Send + Sync + 'static) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| check(name, Options::default(), body)))
        .expect_err("the checker must catch this mutant");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("model failures carry a message");
    let start = msg.find("seed: \"").expect("failure report names a seed") + "seed: \"".len();
    let end = msg[start..].find('"').expect("seed is quoted") + start;
    msg[start..end].to_string()
}

/// The pre-PR-5 cursor: claims via bare `fetch_add`, no saturation.
struct MutantQueue {
    cursor: AtomicUsize,
    space: usize,
}

impl MutantQueue {
    fn claim(&self, chunk: usize) -> Option<(usize, usize)> {
        let start = self.cursor.fetch_add(chunk, SC);
        if start >= self.space {
            return None;
        }
        Some((start, start.saturating_add(chunk).min(self.space)))
    }
}

fn mutant_queue_body() {
    let q = Arc::new(MutantQueue { cursor: AtomicUsize::new(usize::MAX - 3), space: usize::MAX });
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            spawn(move || {
                let first = q.claim(usize::MAX / 2);
                let second = q.claim(usize::MAX / 2);
                [first, second]
            })
        })
        .collect();
    let claims: Vec<(usize, usize)> =
        workers.into_iter().flat_map(selc_check::model::JoinHandle::join).flatten().collect();
    // The invariant the saturating queue upholds: only the clipped tail
    // is ever handed out near the top of the space, exactly once. The
    // mutant's second `fetch_add` wraps the cursor past zero and
    // re-issues low indices a second claimant already owns.
    assert_eq!(
        claims,
        vec![(usize::MAX - 3, usize::MAX)],
        "wrapped cursor re-issued already-claimed indices"
    );
}

#[test]
fn checker_catches_the_reintroduced_cursor_wrap_bug_with_a_replayable_seed() {
    let seed = failing_seed("mutant-queue-wrap", mutant_queue_body);
    // The named seed replays the same failing interleaving, every time.
    for _ in 0..2 {
        let replay = catch_unwind(AssertUnwindSafe(|| {
            check_with_seed("mutant-queue-wrap", &seed, Options::default(), mutant_queue_body);
        }));
        assert!(replay.is_err(), "seed {seed:?} must replay the failure deterministically");
    }
}

/// A shared bound whose domination test was weakened to non-strict
/// (`>=`): ties get pruned.
struct MutantBound {
    bits: AtomicU64,
}

impl MutantBound {
    fn observe(&self, loss: f64) {
        self.bits.fetch_min(loss.to_bits(), SC);
    }

    fn dominated(&self, lb: f64) -> bool {
        lb.to_bits() >= self.bits.load(SC) // the mutation: `>=` where `>` is required
    }
}

fn mutant_bound_body() {
    // Two candidates tie at loss 5.0. The deterministic reduction keeps
    // the earlier index; pruning must therefore never skip a tie.
    let b = Arc::new(MutantBound { bits: AtomicU64::new(u64::MAX) });
    let publisher = {
        let b = Arc::clone(&b);
        spawn(move || b.observe(5.0))
    };
    let scanner = {
        let b = Arc::clone(&b);
        spawn(move || {
            // The earlier-indexed candidate also achieves 5.0 — with
            // strict domination it is never skipped, so the winner is
            // index 0 on every schedule. The non-strict mutant prunes it
            // whenever the publisher's 5.0 lands first.
            if b.dominated(5.0) {
                None // pruned: the sequential scan's winner was dropped
            } else {
                Some(0usize)
            }
        })
    };
    publisher.join();
    let winner = scanner.join();
    assert_eq!(winner, Some(0), "a tying candidate was pruned — tie-break determinism broke");
}

#[test]
fn checker_catches_the_weakened_bound_with_a_replayable_seed() {
    let seed = failing_seed("mutant-bound-ties", mutant_bound_body);
    let replay = catch_unwind(AssertUnwindSafe(|| {
        check_with_seed("mutant-bound-ties", &seed, Options::default(), mutant_bound_body);
    }));
    assert!(replay.is_err(), "seed {seed:?} must replay the failure deterministically");
}
