//! Fixture tests for the `selc-lint` rules: each rule fires on a
//! minimal offending source, stays quiet on the sanctioned shapes, and
//! honours waivers, test regions, and the allowlist.

use selc_check::lint::{lint_source, Rule};

fn rules_at(path: &str, src: &str) -> Vec<(usize, Rule)> {
    lint_source(path, src).into_iter().map(|f| (f.line, f.rule)).collect()
}

// ---------------------------------------------------------------- partial-cmp

#[test]
fn partial_cmp_fires_outside_the_allowlist() {
    let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }\n";
    assert_eq!(rules_at("crates/core/src/loss.rs", src), vec![(1, Rule::PartialCmp)]);
}

#[test]
fn partial_cmp_is_allowed_in_the_dual_impl() {
    let src = "impl PartialOrd for Dual { fn partial_cmp(&self, o: &Dual) -> Option<Ordering> { self.re.partial_cmp(&o.re) } }\n";
    assert_eq!(rules_at("crates/autodiff/src/dual.rs", src), vec![]);
}

#[test]
fn float_sort_by_without_total_cmp_fires() {
    let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let found = rules_at("crates/core/src/rank.rs", src);
    assert!(found.contains(&(2, Rule::PartialCmp)), "found: {found:?}");
}

#[test]
fn sort_by_with_total_cmp_is_clean() {
    let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert_eq!(rules_at("crates/core/src/rank.rs", src), vec![]);
}

#[test]
fn partial_cmp_inside_strings_and_comments_is_ignored() {
    let src = "// partial_cmp is banned\nfn f() { let s = \"partial_cmp\"; let _ = s; }\n";
    assert_eq!(rules_at("crates/core/src/doc.rs", src), vec![]);
}

#[test]
fn partial_cmp_in_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(a: f64, b: f64) { a.partial_cmp(&b); }\n}\n";
    assert_eq!(rules_at("crates/core/src/loss.rs", src), vec![]);
}

// ------------------------------------------------------------ ordering-comment

#[test]
fn bare_orderings_fire_without_a_justification() {
    let src = "fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![(1, Rule::OrderingComment)]);
}

#[test]
fn same_line_ordering_comments_justify() {
    let src =
        "fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); } // ordering: Relaxed — a stats cell\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn ordering_comment_blocks_above_justify_a_multi_line_call() {
    let src = "fn f(x: &AtomicU64) {\n    // ordering: Relaxed — the cursor only partitions indices.\n    x.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {\n        Some(c + 1)\n    });\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn a_run_of_ordering_lines_reports_once() {
    let src = "fn f(x: &AtomicU64) {\n    x.store(1, Ordering::Release);\n    x.load(Ordering::Acquire);\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![(2, Rule::OrderingComment)]);
}

#[test]
fn orderings_in_test_modules_are_exempt() {
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn ordering_waivers_work() {
    let src = "fn f(x: &AtomicU64) {\n    // selc-lint: allow(ordering-comment)\n    x.load(Ordering::SeqCst);\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

// -------------------------------------------------------------- serve-no-panic

#[test]
fn unwrap_in_serve_non_test_code_fires() {
    let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); drop(g); }\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![(1, Rule::ServeNoPanic)]);
}

#[test]
fn expect_in_serve_non_test_code_fires() {
    let src = "fn f(v: Option<u32>) -> u32 { v.expect(\"present\") }\n";
    assert_eq!(rules_at("crates/serve/src/protocol.rs", src), vec![(1, Rule::ServeNoPanic)]);
}

#[test]
fn unwrap_outside_serve_is_not_this_rules_business() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn unwrap_in_serve_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1u32).unwrap(); }\n}\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![]);
}

#[test]
fn serve_waivers_work() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // selc-lint: allow(serve-no-panic)\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![]);
}

#[test]
fn unwrap_or_else_and_unwrap_or_default_are_not_unwrap() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or_else(|| 0).max(v.unwrap_or_default()) }\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![]);
}

// -------------------------------------------------------------------- display

#[test]
fn findings_render_as_path_line_rule_message() {
    let f = &lint_source("crates/serve/src/x.rs", "fn f(v: Option<u32>) { v.unwrap(); }\n")[0];
    let line = f.to_string();
    assert!(line.starts_with("crates/serve/src/x.rs:1: [serve-no-panic]"), "got {line}");
}
