//! Fixture tests for the `selc-lint` rules: each rule fires on a
//! minimal offending source, stays quiet on the sanctioned shapes, and
//! honours waivers, test regions, and the allowlist.

use selc_check::lint::{lint_source, Rule};

fn rules_at(path: &str, src: &str) -> Vec<(usize, Rule)> {
    lint_source(path, src).into_iter().map(|f| (f.line, f.rule)).collect()
}

// ---------------------------------------------------------------- partial-cmp

#[test]
fn partial_cmp_fires_outside_the_allowlist() {
    let src = "fn f(a: f64, b: f64) { a.partial_cmp(&b); }\n";
    assert_eq!(rules_at("crates/core/src/loss.rs", src), vec![(1, Rule::PartialCmp)]);
}

#[test]
fn partial_cmp_is_allowed_in_the_dual_impl() {
    let src = "impl PartialOrd for Dual { fn partial_cmp(&self, o: &Dual) -> Option<Ordering> { self.re.partial_cmp(&o.re) } }\n";
    assert_eq!(rules_at("crates/autodiff/src/dual.rs", src), vec![]);
}

#[test]
fn float_sort_by_without_total_cmp_fires() {
    let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let found = rules_at("crates/core/src/rank.rs", src);
    assert!(found.contains(&(2, Rule::PartialCmp)), "found: {found:?}");
}

#[test]
fn sort_by_with_total_cmp_is_clean() {
    let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert_eq!(rules_at("crates/core/src/rank.rs", src), vec![]);
}

#[test]
fn partial_cmp_inside_strings_and_comments_is_ignored() {
    let src = "// partial_cmp is banned\nfn f() { let s = \"partial_cmp\"; let _ = s; }\n";
    assert_eq!(rules_at("crates/core/src/doc.rs", src), vec![]);
}

#[test]
fn partial_cmp_in_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(a: f64, b: f64) { a.partial_cmp(&b); }\n}\n";
    assert_eq!(rules_at("crates/core/src/loss.rs", src), vec![]);
}

// ------------------------------------------------------------ ordering-comment

#[test]
fn bare_orderings_fire_without_a_justification() {
    let src = "fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![(1, Rule::OrderingComment)]);
}

#[test]
fn same_line_ordering_comments_justify() {
    let src =
        "fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); } // ordering: Relaxed — a stats cell\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn ordering_comment_blocks_above_justify_a_multi_line_call() {
    let src = "fn f(x: &AtomicU64) {\n    // ordering: Relaxed — the cursor only partitions indices.\n    x.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {\n        Some(c + 1)\n    });\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn a_run_of_ordering_lines_reports_once() {
    let src = "fn f(x: &AtomicU64) {\n    x.store(1, Ordering::Release);\n    x.load(Ordering::Acquire);\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![(2, Rule::OrderingComment)]);
}

#[test]
fn orderings_in_test_modules_are_exempt() {
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn ordering_waivers_work() {
    let src = "fn f(x: &AtomicU64) {\n    // selc-lint: allow(ordering-comment)\n    x.load(Ordering::SeqCst);\n}\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

// -------------------------------------------------------------- serve-no-panic

#[test]
fn unwrap_in_serve_non_test_code_fires() {
    let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); drop(g); }\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![(1, Rule::ServeNoPanic)]);
}

#[test]
fn expect_in_serve_non_test_code_fires() {
    let src = "fn f(v: Option<u32>) -> u32 { v.expect(\"present\") }\n";
    assert_eq!(rules_at("crates/serve/src/protocol.rs", src), vec![(1, Rule::ServeNoPanic)]);
}

#[test]
fn unwrap_outside_serve_is_not_this_rules_business() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    assert_eq!(rules_at("crates/engine/src/x.rs", src), vec![]);
}

#[test]
fn unwrap_in_serve_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1u32).unwrap(); }\n}\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![]);
}

#[test]
fn serve_waivers_work() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() } // selc-lint: allow(serve-no-panic)\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![]);
}

#[test]
fn unwrap_or_else_and_unwrap_or_default_are_not_unwrap() {
    let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or_else(|| 0).max(v.unwrap_or_default()) }\n";
    assert_eq!(rules_at("crates/serve/src/server.rs", src), vec![]);
}

// --------------------------------------------------- flow-uncertified-nonneg

#[test]
fn assuming_nonneg_unchecked_fires_without_a_certificate_argument() {
    let src = "fn f(e: Eval) -> Eval {\n    e.assuming_nonneg_losses_unchecked()\n}\n";
    assert_eq!(rules_at("crates/lambda-rt/src/x.rs", src), vec![(2, Rule::FlowUncertifiedNonneg)]);
}

#[test]
fn literal_true_into_an_unchecked_entry_point_fires() {
    let src = "fn f() {\n    let _ = search_flat_unchecked(&eng, &cands, &cache, true);\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", src), vec![(2, Rule::FlowUncertifiedNonneg)]);
}

#[test]
fn multi_line_unchecked_calls_are_scanned_to_the_matching_paren() {
    let src = "fn f() {\n    let _ = search_flat_unchecked(\n        &eng,\n        &cands,\n        true,\n    );\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", src), vec![(2, Rule::FlowUncertifiedNonneg)]);
}

#[test]
fn unchecked_calls_without_a_true_literal_are_clean() {
    let src = "fn f() {\n    let _ = search_flat_unchecked(&eng, &cands, &cache, false);\n    let _ = search_flat_unchecked(&eng, &cands, &cache, flag);\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", src), vec![]);
}

#[test]
fn identifiers_containing_true_are_not_the_literal() {
    let src =
        "fn f() {\n    let _ = search_flat_unchecked(&eng, &cands, is_truechain, untrue);\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", src), vec![]);
}

#[test]
fn flow_certified_comments_justify_same_line_and_above() {
    let same = "fn f(e: Eval) -> Eval {\n    e.assuming_nonneg_losses_unchecked() // flow: certified by the chain corpus proof\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", same), vec![]);
    let above = "fn f() {\n    // flow: certified (chain corpus, asserted in the test above)\n    let _ = search_flat_unchecked(\n        &eng, &cands, &cache, true);\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", above), vec![]);
}

#[test]
fn flow_waivers_and_test_regions_are_exempt() {
    let waived = "fn f(e: Eval) -> Eval {\n    // selc-lint: allow(flow-uncertified-nonneg)\n    e.assuming_nonneg_losses_unchecked()\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", waived), vec![]);
    let test =
        "#[cfg(test)]\nmod tests {\n    fn t() { search_flat_unchecked(&e, &c, &k, true); }\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", test), vec![]);
}

#[test]
fn unchecked_definitions_are_the_sanctioned_escape_hatch() {
    let src = "pub fn search_flat_unchecked(eng: &E, nonneg: bool) -> Out {\n    todo!()\n}\n";
    assert_eq!(rules_at("crates/rt/src/x.rs", src), vec![]);
}

// -------------------------------------------------------------------- display

#[test]
fn findings_render_as_path_line_rule_message() {
    let f = &lint_source("crates/serve/src/x.rs", "fn f(v: Option<u32>) { v.unwrap(); }\n")[0];
    let line = f.to_string();
    assert!(line.starts_with("crates/serve/src/x.rs:1: [serve-no-panic]"), "got {line}");
}
