//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small, deterministic property-testing harness exposing the subset of the
//! proptest API its test suites use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]` and
//!   `pat in strategy` arguments;
//! * strategies: ranges over primitives, [`strategy::Just`],
//!   [`strategy::any`], tuples, [`collection::vec`],
//!   `prop_map`, `prop_recursive`, and [`prop_oneof!`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//!   and [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: no shrinking (a failing case reports the
//! generated inputs via the assertion message only), and generation is
//! deterministic per test function (seeded from `file!()`/`line!()`), so
//! failures reproduce exactly in CI.

pub mod test_runner {
    use rand::SeedableRng as _;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass: a genuine failure, or a
    /// `prop_assume!` rejection (the case is skipped, not failed).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The RNG threaded through strategy generation.
    pub struct TestRng {
        pub(crate) inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Deterministic per test function: the same test generates the
        /// same case sequence on every run. The name is part of the seed
        /// because `file!()`/`line!()` resolve to the `proptest!`
        /// invocation site, which is shared by every function in a block.
        pub fn deterministic(file: &str, line: u32, name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in file.bytes().chain(line.to_le_bytes()).chain(name.bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { inner: rand::rngs::StdRng::seed_from_u64(h) }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::marker::PhantomData;
    use std::rc::Rc;

    /// A generator of values (proptest's `Strategy`, minus shrinking).
    pub trait Strategy: Clone + 'static {
        type Value: 'static;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy (cheap, `Rc`-shared, cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value> {
            let me = self;
            BoxedStrategy(Rc::new(move |rng| me.generate(rng)))
        }

        /// Maps generated values through `f`.
        fn prop_map<O: 'static>(self, f: impl Fn(Self::Value) -> O + 'static) -> Map<Self, O> {
            Map { inner: self, f: Rc::new(f) }
        }

        /// Recursive strategies: `recurse` receives a strategy for the
        /// recursive positions; the result nests at most `depth` levels
        /// before bottoming out at `self`. (`desired_size` and
        /// `expected_branch_size` are accepted for API compatibility and
        /// ignored — there is no sizing heuristic here.)
        fn prop_recursive<S2: Strategy<Value = Self::Value>>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: impl Fn(BoxedStrategy<Self::Value>) -> S2,
        ) -> BoxedStrategy<Self::Value> {
            let mut s = self.clone().boxed();
            for _ in 0..depth {
                // Mix the leaf back in at every level so generated trees
                // vary in depth instead of always reaching `depth`.
                s = OneOf::new(vec![self.clone().boxed(), recurse(s).boxed()]).boxed();
            }
            s
        }
    }

    /// A type-erased, shareable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
        fn boxed(self) -> BoxedStrategy<T> {
            self
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` — uniform over the type's whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// Types `any::<T>()` can generate.
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.inner.gen()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )+};
    }
    range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S: Strategy, O> {
        inner: S,
        f: Rc<dyn Fn(S::Value) -> O>,
    }

    // Manual impl: `S::Value` need not be Clone, only the strategy itself.
    impl<S: Strategy, O> Clone for Map<S, O> {
        fn clone(&self) -> Self {
            Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
        }
    }

    impl<S: Strategy, O: 'static> Strategy for Map<S, O> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (the [`prop_oneof!`](crate::prop_oneof) macro).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf { arms: self.arms.clone() }
        }
    }

    impl<T: 'static> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one alternative");
            OneOf { arms }
        }
    }

    impl<T: 'static> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.arms.len();
            self.arms[i].generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// `Vec` of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { elem: self.elem.clone(), size: self.size }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    impl<S: Strategy> VecStrategy<S> {
        pub fn boxed(self) -> BoxedStrategy<Vec<S::Value>> {
            Strategy::boxed(self)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// The test-defining macro. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs; the body runs in a
/// closure returning `Result<(), TestCaseError>`, so `?` and early
/// `return Err(..)` work as in real proptest.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(config = $cfg; $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(config = $crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(file!(), line!(), stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many prop_assume! rejections ({} attempts for {} cases)",
                    attempts,
                    config.cases,
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed: {}", accepted + 1, msg)
                    }
                }
            }
        }
        $crate::__proptest_impl!(config = $cfg; $($rest)*);
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    left,
                    right
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Skips (does not fail) the current case when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -10i32..10, y in 0usize..5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_respects_size(xs in crate::collection::vec(0u32..100, 1..12)) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn fixed_size_vec(xs in crate::collection::vec(0u32..10, 25)) {
            prop_assert_eq!(xs.len(), 25);
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![
            (0i32..5).prop_map(|x| x * 2),
            Just(100),
        ]) {
            prop_assert!(v == 100 || (v % 2 == 0 && v < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn tuples_and_any(t in (0u8..4, 0u8..4), b in any::<bool>()) {
            prop_assert!(t.0 < 4 && t.1 < 4);
            let _ = b;
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)] // the Leaf payload exists to exercise prop_map
        enum T {
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i32..10).prop_map(T::Leaf);
        let tree = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::deterministic(file!(), line!(), "recursive");
        let mut saw_node = false;
        for _ in 0..64 {
            let t = tree.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, T::Node(..));
        }
        assert!(saw_node, "recursion never taken");
    }
}
