//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, dependency-free implementation of the `rand` API surface it
//! actually uses: [`rngs::StdRng`] seeded with [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_bool`, and `gen_range` over integer
//! and float ranges. Generation is deterministic per seed (splitmix64),
//! which is exactly what the test suites want.

pub mod rngs {
    /// A small, fast, deterministic PRNG (splitmix64 core). Not
    /// cryptographic — this is a test/benchmark RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> StdRng {
            StdRng { state }
        }

        /// Advances the state and returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014) — passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so that nearby seeds give unrelated streams.
        let mut r = rngs::StdRng::from_state(state ^ 0xA076_1D64_78BD_642F);
        r.next_u64();
        r
    }
}

/// A type that can be sampled uniformly from its full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u64() as u32
    }
}

/// A range that can be sampled from (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = Standard::sample(rng);
                let v = self.start + (u as $t) * (self.end - self.start);
                // Rounding (f64→f32 cast, or start + u*span for uneven
                // spans) can land exactly on the exclusive upper bound;
                // keep the half-open contract.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-3i32..=5);
            assert!((-3..=5).contains(&x));
            let y = r.gen_range(0usize..7);
            assert!(y < 7);
            let z = r.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&z));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = rngs::StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_range_covers_both_halves() {
        let mut r = rngs::StdRng::seed_from_u64(3);
        let mut hi = false;
        let mut lo = false;
        for _ in 0..64 {
            if r.gen_range(0u32..100) >= 50 {
                hi = true;
            } else {
                lo = true;
            }
        }
        assert!(hi && lo);
    }
}
