//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal wall-clock benchmark harness exposing the criterion API subset
//! the `selc-bench` targets use: [`Criterion`] with builder-style config,
//! [`Criterion::benchmark_group`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the plain and the
//! `name/config/targets` struct form).
//!
//! Reported numbers are median-of-samples wall-clock ns/iter, printed to
//! stdout — adequate for tracking relative regressions in this repo, not a
//! replacement for criterion's statistics. Honors `--bench` (ignored) and
//! runs everything; `cargo bench --no-run` is the CI-verified path.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state: measurement settings shared by all benches.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_bench(self, &label, f);
        self
    }
}

/// A named benchmark id, displayed as `function/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &label, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion, &label, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Handed to the benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back runs of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    // Warm up and estimate the per-iteration cost.
    let warm_deadline = Instant::now() + c.warm_up_time;
    let mut per_iter = Duration::from_nanos(0);
    let mut warm_runs = 0u32;
    loop {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = per_iter.max(b.elapsed.max(Duration::from_nanos(1)));
        warm_runs += 1;
        if Instant::now() >= warm_deadline || warm_runs >= 10 {
            break;
        }
    }

    // Pick an iteration count so each sample lands near its share of the
    // measurement budget.
    let budget_per_sample = c.measurement_time / c.sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher { iters: iters as u64, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("{label:<50} median {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {iters} iters x {} samples)", c.sample_size);
}

/// Declares a benchmark group function. Supports the plain form
/// `criterion_group!(benches, f, g)` and the struct form with an explicit
/// `config`.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench-target `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`/filter args; this harness runs
            // every registered bench regardless.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_and_id_labels() {
        let id = BenchmarkId::new("handler", 64);
        assert_eq!(id.to_string(), "handler/64");
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("grp");
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| x * 2);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}
